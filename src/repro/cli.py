"""Command-line interface: regenerate any paper experiment from a shell.

Examples::

    python -m repro fig5                 # PREFETCHNTA timing bands
    python -m repro table2 --bits 256    # channel capacity peaks
    python -m repro send "hello world"   # ship a message over NTP+NTP
    python -m repro detect --duration 500000
    python -m repro evset --size 12 --platform kaby-lake
    python -m repro report --store runs.sqlite   # regression report

Every command accepts ``--platform`` (skylake / kaby-lake) and ``--seed``.
Sweep commands also take ``--store DB`` / ``--no-store`` to control which
campaign store records the run (default: ``$REPRO_STORE``); ``report`` and
``campaigns`` read that history back without re-running anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .analysis.reporting import format_table
from .attacks.ntp_ntp import NTPNTPChannel
from .attacks.prime_scope import PrimePrefetchScope, PrimeScope
from .channel.encoding import RepetitionEncoder
from .channel.framing import FrameCodec
from .config import KABY_LAKE, SKYLAKE, PlatformConfig
from .sim.machine import Machine
from .victims.noise import NoiseConfig

_PLATFORMS: Dict[str, PlatformConfig] = {
    "skylake": SKYLAKE,
    "kaby-lake": KABY_LAKE,
}


def _machine(args: argparse.Namespace) -> Machine:
    return Machine(_PLATFORMS[args.platform], seed=args.seed,
                   backend=getattr(args, "engine", None))


def _machine_factory(args: argparse.Namespace) -> Callable[[], Machine]:
    platform = _PLATFORMS[args.platform]
    seed = args.seed
    engine = getattr(args, "engine", None)
    return lambda: Machine(platform, seed=seed, backend=engine)


def _result_cache(args: argparse.Namespace):
    """The on-disk result cache for sweep commands (``--no-cache`` disables)."""
    if args.no_cache:
        return None
    from .runner import ResultCache

    return ResultCache()


def _fault_plan(args: argparse.Namespace):
    """The :class:`~repro.faults.FaultPlan` behind ``--faults``, if any."""
    path = getattr(args, "faults", None)
    if path is None:
        return None
    from .faults import FaultPlan

    return FaultPlan.load(path)


def _sweep_store_scope(args: argparse.Namespace):
    """The default-store scope a command runs under.

    ``--store DB`` installs that file as the process default for the
    command's duration; ``--no-store`` installs the DISABLED sentinel
    (overriding ``$REPRO_STORE``); with neither, env resolution applies
    untouched.  Commands without runner flags get a no-op scope.
    """
    from contextlib import nullcontext

    if not hasattr(args, "no_store"):
        return nullcontext()
    from .store import DISABLED, CampaignStore, use_default_store

    if args.no_store:
        return use_default_store(DISABLED)
    if args.store:
        return use_default_store(CampaignStore(args.store))
    return nullcontext()


def _sweep_runtime_scope(args: argparse.Namespace):
    """The default-runtime scope a command runs under.

    ``--runtime persistent`` (the default for runner commands) installs
    one :class:`~repro.runner.Runtime` as the process default for the
    command's duration — every sweep the command issues shares one worker
    pool — and closes it (pool shut down, shared memory unlinked) on the
    way out.  ``--runtime fresh`` installs the FRESH sentinel, forcing a
    per-sweep pool even when ``$REPRO_RUNTIME=persistent``.  Commands
    without runner flags get a no-op scope.
    """
    from contextlib import contextmanager, nullcontext

    choice = getattr(args, "runtime", None)
    if choice is None:
        return nullcontext()
    from .runner import FRESH, Runtime, use_default_runtime

    if choice == "fresh":
        return use_default_runtime(FRESH)

    @contextmanager
    def scope():
        with Runtime(name="cli") as rt, use_default_runtime(rt):
            yield

    return scope()


def _open_store(args: argparse.Namespace):
    """The store a read-only command (report/campaigns) queries, or None."""
    from .store import CampaignStore, get_default_store

    if getattr(args, "store", None):
        return CampaignStore(args.store)
    return get_default_store()


def _sweep_obs(args: argparse.Namespace):
    """(metrics registry, trace) backing one sweep command's run."""
    from .obs import EventTrace, MetricsRegistry, NULL_TRACE

    registry = MetricsRegistry()
    trace = EventTrace() if getattr(args, "trace", None) else NULL_TRACE
    return registry, trace


def _finish_sweep_obs(args: argparse.Namespace, registry, trace) -> None:
    """Print the runner summary and export the trace, if one was recorded.

    Both lines go to stderr: stdout carries only the result tables, which
    are bit-identical for any ``--jobs`` value, while this telemetry is
    wall-clock and varies run to run.
    """
    from .analysis.reporting import runner_summary

    print(runner_summary(registry), file=sys.stderr)
    if getattr(args, "trace", None):
        written = trace.to_jsonl(args.trace)
        print(f"[trace] {written} event(s) -> {args.trace}", file=sys.stderr)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_fig2(args: argparse.Namespace) -> int:
    from .experiments.insertion import run_insertion_experiment

    result = run_insertion_experiment(_machine(args), repetitions=args.repetitions)
    rows = [
        (a, f"{result.summary(a).p50:.0f}", f"{result.evicted_fraction[a]*100:.0f}%")
        for a in sorted(result.latencies)
    ]
    print(format_table(("a", "reload p50 (cyc)", "evicted"), rows,
                       title="Figure 2 — insertion policy (paper: >200 cyc, 100%)"))
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    from .experiments.insertion import run_insertion_age_experiment

    result = run_insertion_age_experiment(_machine(args))
    print(f"Figure 3 — eviction order in-order fraction: "
          f"{result.in_order_fraction():.2f} (paper: 1.00)")
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    from .experiments.updating import run_updating_experiment

    result = run_updating_experiment(_machine(args), repetitions=args.repetitions)
    print(f"Figure 4 — candidate evicted despite prefetch hit: "
          f"{result.evicted_fraction*100:.0f}% (paper: 100%)")
    print(f"           ages preserved on prefetch hits: {result.age_preserved}")
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from .experiments.timing_variance import run_timing_variance_experiment

    result = run_timing_variance_experiment(_machine(args), repetitions=args.repetitions)
    rows = []
    paper = {"l1_hit": "~70", "llc_hit": "90-100", "dram": ">200"}
    for scenario in ("l1_hit", "llc_hit", "dram"):
        summary = result.summary(scenario)
        rows.append((scenario, paper[scenario], f"{summary.p50:.0f}"))
    print(format_table(("scenario", "paper (cyc)", "measured p50"), rows,
                       title="Figure 5 — PREFETCHNTA timing bands"))
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from .experiments.protocol_walkthrough import run_protocol_walkthrough

    result = run_protocol_walkthrough(_machine(args))
    print("Figure 6 — NTP+NTP state walkthrough (executed live)")
    print(result.render())
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from .experiments.capacity_sweep import run_capacity_sweep

    cache = _result_cache(args)
    registry, trace = _sweep_obs(args)
    plan = _fault_plan(args)
    rows = []
    for channel in ("ntp+ntp", "prime+probe"):
        sweep = run_capacity_sweep(
            _machine_factory(args), channel, n_bits=args.bits, seed=args.seed,
            jobs=args.jobs, result_cache=cache, metrics=registry, trace=trace,
            faults=plan, retries=args.retries,
            warm_start=not args.cold_start,
        )
        peak = sweep.peak
        rows.append(
            (channel, sweep.platform, f"{peak.raw_rate_kb_per_s:.0f}",
             f"{peak.bit_error_rate*100:.2f}%", f"{peak.capacity_kb_per_s:.0f}")
        )
    print(format_table(
        ("channel", "platform", "raw KB/s", "BER", "capacity KB/s"), rows,
        title="Table II — peak channel capacities "
              "(paper: NTP+NTP 302/275, Prime+Probe 86/81)",
    ))
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    from .experiments.capacity_sweep import run_capacity_sweep

    registry, trace = _sweep_obs(args)
    sweep = run_capacity_sweep(
        _machine_factory(args), args.channel, n_bits=args.bits, seed=args.seed,
        jobs=args.jobs, result_cache=_result_cache(args),
        metrics=registry, trace=trace,
        faults=_fault_plan(args), retries=args.retries,
        warm_start=not args.cold_start,
    )
    print(format_table(
        ("interval", "raw KB/s", "BER", "capacity KB/s"), sweep.rows(),
        title=f"Figure 8 — {args.channel} on {sweep.platform}",
    ))
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_fig2_sweep(args: argparse.Namespace) -> int:
    from .experiments.insertion_sweep import run_insertion_sweep

    registry, trace = _sweep_obs(args)
    sweep = run_insertion_sweep(
        _machine_factory(args), trials=args.trials, seed=args.seed,
        jobs=args.jobs, result_cache=_result_cache(args),
        metrics=registry, trace=trace,
        faults=_fault_plan(args), retries=args.retries,
        engine=getattr(args, "engine", None),
        batch_size=args.batch_size,
    )
    rows = [
        (str(a), f"{sweep.evicted_fraction[a]*100:.0f}%")
        for a in sorted(sweep.evicted_fraction)
    ]
    print(format_table(
        ("position", "evicted"), rows,
        title=f"Figure 2 sweep — {sweep.platform} via {sweep.engine} engine "
              "(paper: evicted at every position)",
    ))
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_fig11(args: argparse.Namespace) -> int:
    from .experiments.prep_latency import run_prep_latency_experiment

    result = run_prep_latency_experiment(_machine(args), rounds=args.repetitions)
    ps, pps = result.summaries()
    rows = [
        ("Prime+Scope", PrimeScope.PREP_REFERENCES, f"{ps.mean:.0f}"),
        ("Prime+Prefetch+Scope", PrimePrefetchScope.PREP_REFERENCES, f"{pps.mean:.0f}"),
    ]
    print(format_table(("attack", "references", "prep mean (cyc)"), rows,
                       title="Figure 11 — preparation latency "
                             "(paper: 1906 vs 1043 on Skylake)"))
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    from .experiments.detection import run_detection_comparison

    results = run_detection_comparison(
        _machine_factory(args), victim_period=args.period, duration=args.duration
    )
    rows = [
        (r.attack, len(r.victim_accesses), len(r.detections),
         f"{r.false_negative_rate*100:.1f}%")
        for r in results
    ]
    print(format_table(("attack", "events", "detections", "FN rate"), rows,
                       title="Section V-A3 — detection false negatives "
                             "(paper: ~50% vs <2%)"))
    return 0


def cmd_fig12(args: argparse.Namespace) -> int:
    from .experiments.iteration_latency import run_iteration_latency_experiment

    result = run_iteration_latency_experiment(
        _machine_factory(args), iterations=args.repetitions
    )
    rows = []
    for name in ("reload+refresh", "prefetch+refresh_v1", "prefetch+refresh_v2"):
        summary = result.summary(name)
        costs = result.revert_costs[name]
        rows.append(
            (name, f"{summary.mean:.0f}",
             f"{costs.flushes}/{costs.dram_accesses}/{costs.llc_accesses}",
             f"{result.accuracy[name]*100:.0f}%")
        )
    print(format_table(
        ("attack", "iter mean (cyc)", "revert f/d/l", "accuracy"), rows,
        title="Figure 12 + Table III (paper: 1601/1165/873; 2-2-14/2-2-0/1-1-0)",
    ))
    return 0


def cmd_evset(args: argparse.Namespace) -> int:
    from .attacks.evset import (
        build_eviction_set_prefetch,
        hugepage_candidates,
        verify_eviction_set,
    )
    from .experiments.evset_speed import run_evset_speed_experiment

    result = run_evset_speed_experiment(
        _machine_factory(args), size=args.size, seed=args.seed
    )
    rows = [
        ("baseline", result.baseline.memory_references, f"{result.baseline_ms:.2f}",
         f"{result.baseline_accuracy*100:.0f}%"),
        ("prefetch (Alg. 2)", result.prefetch.memory_references,
         f"{result.prefetch_ms:.2f}", f"{result.prefetch_accuracy*100:.0f}%"),
    ]
    if args.huge_pages:
        machine = _machine(args)
        target = machine.address_space("victim").alloc_pages(1)[0]
        space = machine.address_space("attacker")
        huge = build_eviction_set_prefetch(
            machine, machine.cores[0], target,
            hugepage_candidates(machine, space, target), size=args.size,
        )
        accuracy = verify_eviction_set(machine, target, huge.lines)
        rows.append(
            ("prefetch + huge pages", huge.memory_references,
             f"{huge.execution_time_ms(machine.config.frequency_hz):.2f}",
             f"{accuracy*100:.0f}%")
        )
    print(format_table(("method", "references", "time (ms)", "accuracy"), rows,
                       title="Figure 13 — eviction set construction"))
    print(f"reference ratio: {result.reference_ratio:.2f}x (paper: 7.25x)")
    return 0


def cmd_noise(args: argparse.Namespace) -> int:
    from .experiments.noise_sweep import run_noise_sweep

    registry, trace = _sweep_obs(args)
    result = run_noise_sweep(
        _machine_factory(args), n_bits=args.bits, seed=args.seed,
        jobs=args.jobs, result_cache=_result_cache(args),
        metrics=registry, trace=trace,
        faults=_fault_plan(args), retries=args.retries,
        warm_start=not args.cold_start,
    )
    print(format_table(result.header(), result.rows(),
                       title="Section IV-B3 — BER vs noise intensity"))
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_detect_sweep(args: argparse.Namespace) -> int:
    from .experiments.detection_sweep import run_detection_sweep

    registry, trace = _sweep_obs(args)
    result = run_detection_sweep(
        _machine_factory(args), duration=args.duration,
        jobs=args.jobs, result_cache=_result_cache(args),
        metrics=registry, trace=trace,
        faults=_fault_plan(args), retries=args.retries,
        warm_start=not args.cold_start,
    )
    print(format_table(result.header(), result.rows(),
                       title="Section V-A3 — FN rate vs victim period"))
    for attack in sorted(result.curves):
        try:
            period = result.usable_period(attack)
            print(f"{attack}: usable down to ~{period}-cycle periods")
        except Exception:
            print(f"{attack}: no tested period reached FN <= 10%")
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    from .experiments.sensitivity import run_sensitivity_experiment

    registry, trace = _sweep_obs(args)
    result = run_sensitivity_experiment(
        _PLATFORMS[args.platform], n_bits=args.bits, seed=args.seed,
        engine=getattr(args, "engine", None),
        jobs=args.jobs, result_cache=_result_cache(args),
        metrics=registry, trace=trace,
        faults=_fault_plan(args), retries=args.retries,
        warm_start=not args.cold_start,
    )
    rows = [
        (f"{p.sync_scale:.2f}", f"{p.ntp_capacity:.0f}",
         f"{p.prime_probe_capacity:.0f}", f"{p.advantage:.1f}x")
        for p in result.points
    ]
    print(format_table(
        ("sync scale", "NTP+NTP KB/s", "Prime+Probe KB/s", "advantage"), rows,
        title="Calibration sensitivity — NTP+NTP advantage vs sync budget",
    ))
    lo, hi = result.advantage_range()
    print(f"advantage range over perturbation: {lo:.1f}x - {hi:.1f}x")
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_spy(args: argparse.Namespace) -> int:
    import random as random_module

    from .experiments.end_to_end_spy import run_end_to_end_spy

    rng = random_module.Random(args.seed)
    key = [rng.randint(0, 1) for _ in range(args.bits)]
    result = run_end_to_end_spy(_machine(args), key, traces=args.traces)
    print(f"concurrent spy: {result.accuracy * 100:.1f}% of {args.bits} key bits "
          f"recovered over {args.traces} trace(s)")
    print("true key :", "".join(map(str, result.true_bits)))
    print("recovered:", "".join(map(str, result.recovered_bits)))
    return 0


def cmd_countermeasure(args: argparse.Namespace) -> int:
    from .experiments.countermeasure import run_countermeasure_experiment

    result = run_countermeasure_experiment(
        _PLATFORMS[args.platform], size=args.size,
        check_channel=not args.no_channel, seed=args.seed,
    )
    print(f"Section VI-D — ref ratio: Intel policy {result.original_ratio:.2f}x "
          f"(paper 7.25x), modified {result.modified_ratio:.2f}x (paper 1.26x)")
    if result.protected_channel_ber is not None:
        print(f"NTP+NTP BER on protected machine: "
              f"{result.protected_channel_ber*100:.0f}%")
    return 0


def cmd_directory(args: argparse.Namespace) -> int:
    from .directory.hierarchy import DirectoryConfig
    from .directory.ntp import run_directory_ntp_exchange

    bits = [1, 0, 1, 1, 0, 0, 1, 0] * 8
    vulnerable = run_directory_ntp_exchange(bits, seed=args.seed)
    safe = run_directory_ntp_exchange(
        bits, config=DirectoryConfig(directory_prefetch_insert_age=2), seed=args.seed
    )
    rows = [
        ("age-3 insertion (vulnerable hypothesis)",
         f"{vulnerable.bit_error_rate*100:.1f}%", vulnerable.works),
        ("age-2 insertion (safe)", f"{safe.bit_error_rate*100:.1f}%", safe.works),
    ]
    print(format_table(("directory policy", "BER", "channel works"), rows,
                       title="Section VI-B — directory NTP+NTP hypothesis"))
    return 0


def cmd_resolution(args: argparse.Namespace) -> int:
    from .experiments.resolution import (
        measure_prime_probe_granularity,
        measure_scope_granularity,
    )

    pps = measure_scope_granularity(_machine(args), PrimePrefetchScope)
    ps = measure_scope_granularity(_machine(args), PrimeScope)
    pp = measure_prime_probe_granularity(_machine(args))
    rows = [
        ("Prime+Prefetch+Scope check", "~70", f"{pps:.0f}"),
        ("Prime+Scope check", "~70", f"{ps:.0f}"),
        ("Prime+Probe round", ">2000", f"{pp:.0f}"),
    ]
    print(format_table(("attack", "paper (cyc)", "measured"), rows,
                       title="Section V-A1 — temporal resolution"))
    return 0


def cmd_pollution(args: argparse.Namespace) -> int:
    from .countermeasures.insertion_policy import machine_with_modified_insertion
    from .experiments.pollution import run_pollution_experiment

    stock = run_pollution_experiment(_machine(args))
    modified = run_pollution_experiment(
        machine_with_modified_insertion(_PLATFORMS[args.platform], seed=args.seed)
    )
    rows = [
        ("Intel policy", "1 (the 1/w bound)", stock.peak_prefetched_ways),
        ("modified policy", "bound lost", modified.peak_prefetched_ways),
    ]
    print(format_table(("policy", "paper", "peak prefetched ways"), rows,
                       title="Section VI-D — LLC pollution bound"))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if not args.json:
        machine = _machine(args)
        channel = NTPNTPChannel(machine, seed=args.seed)
        channel.transmit([1, 0] * 32, 1500)
        print(machine.stats_report())
        return 0

    # --json: one instrumented channel run plus a tiny sweep, every layer's
    # counters published into a single registry and dumped as JSON.
    import json

    from .channel.transport import ReliableTransport
    from .experiments.capacity_sweep import run_capacity_sweep
    from .obs import MachineMetrics, MetricsRegistry

    registry = MetricsRegistry()
    machine = Machine(_PLATFORMS[args.platform], seed=args.seed,
                      metrics=registry)
    channel = NTPNTPChannel(machine, seed=args.seed)
    transport = ReliableTransport(channel, metrics=registry)
    transport.send(b"stats", interval=1500)
    # The channel drives cores op-by-op; one batched replay exercises the
    # engine.ops.* / engine.served.* accumulation path too.
    lines = [i * 64 for i in range(64)]
    machine.run_trace(
        [("load", 0, a) for a in lines]
        + [("prefetchnta", 1, a) for a in lines]
        + [("clflush", 0, a) for a in lines[:8]]
    )
    run_capacity_sweep(
        _machine_factory(args), "ntp+ntp", intervals=(1500, 2100),
        n_bits=32, seed=args.seed, jobs=1, result_cache=None,
        metrics=registry,
    )
    MachineMetrics(machine, registry).publish()
    print(json.dumps(registry.as_dict(), indent=2, sort_keys=True))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .experiments.channel_comparison import (
        ComparisonResult,
        run_channel_comparison,
    )

    registry, trace = _sweep_obs(args)
    result = run_channel_comparison(
        _machine_factory(args), n_bits=args.bits,
        jobs=args.jobs, result_cache=_result_cache(args),
        metrics=registry, trace=trace,
        faults=_fault_plan(args), retries=args.retries,
        warm_start=not args.cold_start,
    )
    print(format_table(ComparisonResult.HEADER, result.rows(),
                       title="Covert-channel design space"))
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .experiments.chaos_sweep import run_chaos_sweep

    registry, trace = _sweep_obs(args)
    result = run_chaos_sweep(
        _machine_factory(args), n_bits=args.bits,
        crash_probability=args.crash, retries=args.retries,
        seed=args.seed, jobs=args.jobs, result_cache=_result_cache(args),
        metrics=registry, trace=trace, plan=_fault_plan(args),
    )
    print(format_table(result.header(), result.rows(),
                       title="Chaos — channel BER/delivery vs fault rate"))
    verdict = "bit-identical" if result.runner_identical else "DIVERGED"
    print(f"runner chaos (crash p={result.crash_probability}, "
          f"retries={result.retries}): {verdict}, "
          f"{result.runner_retries} retried attempt(s), "
          f"{result.runner_failures} unrecovered shard(s)")
    _finish_sweep_obs(args, registry, trace)
    return 0 if result.ok else 1


def cmd_search(args: argparse.Namespace) -> int:
    from .search import EvalContext, make_driver, make_objective

    registry, trace = _sweep_obs(args)
    objective = make_objective(
        args.objective, config=_PLATFORMS[args.platform],
        engine=getattr(args, "engine", None),
    )
    driver = make_driver(args.strategy, objective, budget=args.budget)
    outcome = driver.run(EvalContext(
        seed=args.seed, jobs=args.jobs, cache=_result_cache(args),
        metrics=registry, trace=trace,
        faults=_fault_plan(args), retries=args.retries,
    ))
    rows = [
        (
            row["round"], row["fidelity"], row["evaluations"],
            f"{row['best']:.4f}", f"{row['best_so_far']:.4f}",
        )
        for row in outcome.trajectory()
    ]
    print(format_table(
        ("round", "fidelity", "evals", "round best", "best so far"), rows,
        title=f"Search — {outcome.objective} via {outcome.strategy} "
              f"(budget {outcome.budget})",
    ))
    winner = ", ".join(f"{k}={v}" for k, v in sorted(outcome.winner.items()))
    print(f"winner: {winner} (score {outcome.winner_score:.4f})")
    print(f"evaluations: {outcome.evaluations_used} of {outcome.grid_size} "
          f"grid points ({outcome.evaluations_used / outcome.grid_size:.0%})")
    print(f"fingerprint: {outcome.fingerprint}")
    _finish_sweep_obs(args, registry, trace)
    return 0


def cmd_campaigns(args: argparse.Namespace) -> int:
    import time as time_module

    store = _open_store(args)
    if store is None:
        print("no campaign store: pass --store DB or set $REPRO_STORE",
              file=sys.stderr)
        return 2
    summaries = store.campaigns()
    rows = [
        (
            s.name, s.runs, s.last_run_id,
            time_module.strftime("%Y-%m-%d %H:%M",
                                 time_module.localtime(s.last_started_at)),
            s.last_fingerprint[:12],
        )
        for s in summaries
    ]
    print(format_table(
        ("campaign", "runs", "last run", "when", "fingerprint"), rows,
        title=f"Campaign store {store.path}",
    ))
    names = store.artifact_names()
    if names:
        print(f"{len(names)} benchmark artifact serie(s): {', '.join(names)}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis.reports import generate_report

    store = _open_store(args)
    if store is None:
        print("no campaign store: pass --store DB or set $REPRO_STORE",
              file=sys.stderr)
        return 2
    report = generate_report(store)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(report.text)
        print(f"[report] -> {args.output}", file=sys.stderr)
    else:
        print(report.text)
    if report.regressions:
        for regression in report.regressions:
            print(f"[regression] {regression}", file=sys.stderr)
        if not args.no_gate:
            return 1
    return 0


def cmd_send(args: argparse.Namespace) -> int:
    machine = _machine(args)
    channel = NTPNTPChannel(
        machine, seed=args.seed,
        maintenance_period=96 if args.noise else None,
    )
    codec = FrameCodec()
    encoder = RepetitionEncoder(args.repetition)
    bits = encoder.encode(codec.encode(args.message.encode()))
    noise = NoiseConfig() if args.noise else None
    result = channel.transmit(bits, args.interval, noise=noise)
    frame = codec.decode(encoder.decode(result.received_bits))
    print(result.summary())
    if frame is None:
        print("decode: no frame found")
        return 1
    status = "CRC OK" if frame.crc_ok else "CRC MISMATCH"
    print(f"decode: {frame.payload!r} [{status}]")
    return 0 if frame.crc_ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .runner.cache import default_cache_root
    from .service import JobQueue, make_backend, run_service

    cache_root = (
        None if args.no_cache
        else (args.cache_dir or str(default_cache_root()))
    )
    queue = JobQueue(args.queue, max_depth=args.max_depth)
    backend = make_backend(
        args.backend, cache_root=cache_root, store_path=args.store
    )

    def ready(service) -> None:
        print(
            f"[serve] http://{service.host}:{service.port} "
            f"backend={args.backend} workers={args.workers} "
            f"queue={args.queue} depth<={args.max_depth}",
            file=sys.stderr, flush=True,
        )

    try:
        asyncio.run(run_service(
            queue, backend, host=args.host, port=args.port,
            workers=args.workers, ready=ready,
        ))
    except KeyboardInterrupt:
        print("[serve] shutting down", file=sys.stderr)
    finally:
        queue.close()
    return 0


def _watch_job(client, job_id: int) -> int:
    """Tail one job's SSE stream, one line per event, Ctrl-C to detach."""
    from .analysis.reporting import event_line
    from .errors import ServiceError

    try:
        for event in client.watch(job_id):
            print(event_line(event), flush=True)
            if event.get("name") == "service.job.failed":
                return 1
    except KeyboardInterrupt:
        print(f"[jobs] detached from job {job_id} (still running server-side)",
              file=sys.stderr)
        return 0
    except ServiceError as error:
        print(f"[jobs] {error}", file=sys.stderr)
        return 2
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import dataclasses
    from pathlib import Path

    from .errors import QueueFullError, ServiceError
    from .service import JobSpec, ServiceClient

    text = args.spec
    if not text.lstrip().startswith("{"):
        try:
            text = Path(text).read_text()
        except OSError as error:
            print(f"[submit] cannot read spec file: {error}", file=sys.stderr)
            return 2
    try:
        spec = JobSpec.from_json(text)
        if args.priority is not None:
            spec = dataclasses.replace(spec, priority=args.priority)
    except ServiceError as error:
        print(f"[submit] invalid spec: {error}", file=sys.stderr)
        return 2

    client = ServiceClient(args.host, args.port)
    try:
        job = client.submit(spec)
    except QueueFullError as error:
        print(f"[submit] queue full, retry after {error.retry_after:g}s: "
              f"{error}", file=sys.stderr)
        return 3
    except ServiceError as error:
        print(f"[submit] {error}", file=sys.stderr)
        return 2
    print(f"job {job['id']} submitted "
          f"(priority {job['priority']}, fingerprint {job['fingerprint'][:12]})")
    if args.watch:
        return _watch_job(client, job["id"])
    if args.wait:
        try:
            done = client.wait(job["id"])
        except ServiceError as error:
            print(f"[submit] {error}", file=sys.stderr)
            return 1
        result = done.get("result") or {}
        shards = result.get("shards", {})
        print(f"job {job['id']} done: {shards.get('total', '?')} shard(s), "
              f"{shards.get('cached', '?')} cached, "
              f"{shards.get('computed', '?')} computed")
        for run in result.get("runs", []):
            print(f"  run {run['run_id']} [{run['campaign']}] "
                  f"fingerprint {run['fingerprint'][:12]}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from .errors import ServiceError
    from .service import ServiceClient

    client = ServiceClient(args.host, args.port)
    if args.watch is not None:
        return _watch_job(client, args.watch)
    try:
        jobs = client.jobs(args.state)
    except ServiceError as error:
        print(f"[jobs] {error}", file=sys.stderr)
        return 2
    rows = [
        (
            job["id"], job["state"], job["priority"],
            job["spec"]["experiment"], job["attempts"],
            job["fingerprint"][:12],
        )
        for job in jobs
    ]
    print(format_table(
        ("id", "state", "priority", "experiment", "attempts", "fingerprint"),
        rows, title=f"Jobs at {args.host}:{args.port}",
    ))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Leaky Way (MICRO 2022) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, repetitions: Optional[int] = None,
               runner: bool = False):
        p.add_argument("--platform", choices=sorted(_PLATFORMS), default="skylake")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--engine", choices=("object", "soa", "batch"),
                       default=None,
                       help="trace-execution backend (default: REPRO_ENGINE "
                            "env var, else object; results are bit-identical)")
        if repetitions is not None:
            p.add_argument("--repetitions", type=int, default=repetitions)
        if runner:
            p.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes for sweep points "
                                "(output is identical for any N)")
            p.add_argument("--no-cache", action="store_true",
                           help="recompute sweep points instead of reusing "
                                "the on-disk result cache")
            p.add_argument("--trace", metavar="FILE", default=None,
                           help="export a JSONL event trace of the sweep "
                                "(shard timings, cache hits/misses)")
            p.add_argument("--faults", metavar="PLAN.json", default=None,
                           help="inject deterministic faults from this "
                                "FaultPlan file (see docs/robustness.md)")
            p.add_argument("--retries", type=int, default=0, metavar="N",
                           help="retry budget per shard when faults strike "
                                "(recoverable runs stay bit-identical)")
            p.add_argument("--cold-start", action="store_true",
                           help="rebuild the machine for every sweep point "
                                "instead of warm-starting from a shared "
                                "prefix checkpoint (same results, slower)")
            p.add_argument("--store", metavar="DB", default=None,
                           help="record the run into this campaign store "
                                "sqlite file (default: $REPRO_STORE)")
            p.add_argument("--no-store", action="store_true",
                           help="record the run in no campaign store, even "
                                "if $REPRO_STORE is set")
            p.add_argument("--runtime", choices=("persistent", "fresh"),
                           default="persistent",
                           help="worker provisioning for --jobs > 1: "
                                "'persistent' (default) reuses one pool and "
                                "shared-memory transfer across this "
                                "command's sweeps; 'fresh' spawns a pool "
                                "per sweep (same output either way)")

    p = sub.add_parser("fig2", help="insertion policy (Property #1)")
    common(p, repetitions=100)
    p.set_defaults(func=cmd_fig2)

    p = sub.add_parser("fig3", help="insertion age (eviction order)")
    common(p)
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("fig4", help="updating policy (Property #2)")
    common(p, repetitions=100)
    p.set_defaults(func=cmd_fig4)

    p = sub.add_parser("fig5", help="PREFETCHNTA timing bands (Property #3)")
    common(p, repetitions=200)
    p.set_defaults(func=cmd_fig5)

    p = sub.add_parser("fig6", help="NTP+NTP protocol state walkthrough")
    common(p)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("table2", help="peak channel capacities")
    common(p, runner=True)
    p.add_argument("--bits", type=int, default=256)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("fig8", help="capacity/BER sweep for one channel")
    common(p, runner=True)
    p.add_argument("--channel", choices=("ntp+ntp", "prime+probe"), default="ntp+ntp")
    p.add_argument("--bits", type=int, default=256)
    p.set_defaults(func=cmd_fig8)

    p = sub.add_parser("fig2-sweep", help="insertion sweep, trial-batched")
    common(p, runner=True)
    p.add_argument("--trials", type=int, default=32,
                   help="trials per insertion position")
    p.add_argument("--batch-size", type=int, default=64, metavar="N",
                   help="trials per array program under --engine batch")
    p.set_defaults(func=cmd_fig2_sweep)

    p = sub.add_parser("fig11", help="Prime+Scope prep latency")
    common(p, repetitions=200)
    p.set_defaults(func=cmd_fig11)

    p = sub.add_parser("detect", help="Section V-A3 false negatives")
    common(p)
    p.add_argument("--period", type=int, default=1500)
    p.add_argument("--duration", type=int, default=1_000_000)
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser("fig12", help="Reload+Refresh iteration latency + Table III")
    common(p, repetitions=200)
    p.set_defaults(func=cmd_fig12)

    p = sub.add_parser("evset", help="eviction set construction (Figure 13)")
    common(p)
    p.add_argument("--size", type=int, default=16)
    p.add_argument("--huge-pages", action="store_true",
                   help="also build with 2 MiB pages (slice-only search)")
    p.set_defaults(func=cmd_evset)

    p = sub.add_parser("noise", help="BER vs third-party noise sweep")
    common(p, runner=True)
    p.add_argument("--bits", type=int, default=128)
    p.set_defaults(func=cmd_noise)

    p = sub.add_parser("detect-sweep", help="FN rate vs victim period sweep")
    common(p, runner=True)
    p.add_argument("--duration", type=int, default=600_000)
    p.set_defaults(func=cmd_detect_sweep)

    p = sub.add_parser("sensitivity", help="capacity vs sync-budget perturbation")
    common(p, runner=True)
    p.add_argument("--bits", type=int, default=128)
    p.set_defaults(func=cmd_sensitivity)

    p = sub.add_parser("compare", help="all channels on one table")
    common(p, runner=True)
    p.add_argument("--bits", type=int, default=96)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("spy", help="concurrent RSA key extraction")
    common(p)
    p.add_argument("--bits", type=int, default=64)
    p.add_argument("--traces", type=int, default=4)
    p.set_defaults(func=cmd_spy)

    p = sub.add_parser("countermeasure", help="Section VI-D modified insertion")
    common(p)
    p.add_argument("--size", type=int, default=12)
    p.add_argument("--no-channel", action="store_true")
    p.set_defaults(func=cmd_countermeasure)

    p = sub.add_parser("directory", help="Section VI-B directory hypothesis")
    common(p)
    p.set_defaults(func=cmd_directory)

    p = sub.add_parser("resolution", help="Section V-A1 temporal resolution")
    common(p)
    p.set_defaults(func=cmd_resolution)

    p = sub.add_parser("pollution", help="Section VI-D LLC pollution bound")
    common(p)
    p.set_defaults(func=cmd_pollution)

    p = sub.add_parser("stats", help="cache statistics of a channel run")
    common(p)
    p.add_argument("--json", action="store_true",
                   help="emit cache / runner / channel obs counters as JSON "
                        "instead of the plain-text cache report")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("chaos", help="fault-injected sweep + robustness curve")
    common(p, runner=True)
    p.add_argument("--bits", type=int, default=48)
    p.add_argument("--crash", type=float, default=0.2, metavar="P",
                   help="per-attempt worker crash probability for the "
                        "runner-determinism act")
    p.set_defaults(func=cmd_chaos, retries=3)

    p = sub.add_parser(
        "search",
        help="adaptive search over a sweep space (seeded, deterministic)",
    )
    common(p, runner=True)
    p.add_argument("--objective",
                   choices=("toy-cliff", "capacity-cliff", "detection-knee"),
                   default="toy-cliff",
                   help="what to optimize (see docs/search.md)")
    p.add_argument("--strategy", choices=("mutate", "halving", "bandit"),
                   default="mutate",
                   help="how to spend the budget: mutation loop, successive "
                        "halving over fidelity rungs, or UCB over regions")
    p.add_argument("--budget", type=int, default=32, metavar="N",
                   help="computed-evaluation cap (memoized repeats are free)")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("campaigns", help="list recorded sweep campaigns")
    p.add_argument("--store", metavar="DB", default=None,
                   help="campaign store to read (default: $REPRO_STORE)")
    p.set_defaults(func=cmd_campaigns)

    p = sub.add_parser(
        "report",
        help="regenerate result tables + regression diff from the store",
    )
    p.add_argument("--store", metavar="DB", default=None,
                   help="campaign store to read (default: $REPRO_STORE)")
    p.add_argument("-o", "--output", metavar="FILE", default=None,
                   help="write the markdown report here instead of stdout")
    p.add_argument("--no-gate", action="store_true",
                   help="exit 0 even when gated regressions are found")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("serve", help="run the sweep job service (HTTP + queue)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8766)
    p.add_argument("--queue", metavar="DB", default="service-queue.sqlite",
                   help="persistent job queue sqlite file (jobs survive "
                        "restarts); ':memory:' for a throwaway queue")
    p.add_argument("--max-depth", type=int, default=64, metavar="N",
                   help="pending-job ceiling before submissions get 429")
    p.add_argument("--backend", choices=("local", "subprocess"),
                   default="local",
                   help="shard execution backend: in-process runner stack, "
                        "or a worker process over the pipe protocol "
                        "(identical results either way)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="concurrent dispatcher slots (jobs run at once)")
    p.add_argument("--store", metavar="DB", default=None,
                   help="campaign store recording every job's runs")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="result cache root shared by all jobs "
                        "(default: $REPRO_CACHE_DIR, else the user cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="run jobs without a result cache (no dedupe)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a job spec to the sweep service")
    p.add_argument("spec",
                   help="path to a JSON job spec file, or inline JSON "
                        '(e.g. \'{"experiment": "capacity"}\')')
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8766)
    p.add_argument("--priority", type=int, default=None, metavar="N",
                   help="override the spec's queue priority (higher first)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job settles, then print its summary")
    p.add_argument("--watch", action="store_true",
                   help="tail the job's progress events until it finishes")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="list service jobs / tail one job's events")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8766)
    p.add_argument("--state",
                   choices=("pending", "running", "done", "failed", "cancelled"),
                   default=None, help="only list jobs in this state")
    p.add_argument("--watch", type=int, metavar="ID", default=None,
                   help="tail job ID's progress stream (Ctrl-C detaches)")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("send", help="ship a text message over NTP+NTP")
    common(p)
    p.add_argument("message")
    p.add_argument("--interval", type=int, default=1500)
    p.add_argument("--repetition", type=int, default=3)
    p.add_argument("--noise", action="store_true",
                   help="run background LLC noise during the transfer")
    p.set_defaults(func=cmd_send)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with _sweep_store_scope(args), _sweep_runtime_scope(args):
        return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
