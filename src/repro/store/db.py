"""The sqlite campaign database: durable history of every sweep run.

Before this module, every evaluation artifact the repo produced — sweep
curves, capacity peaks, speedup gates — existed only as a printed table or
a loose JSON file under ``benchmarks/bench_artifacts/``.  Nothing could
answer "did this PR regress capacity vs the last one?" without re-running
the simulation and eyeballing two printouts.

:class:`CampaignStore` is the durable record.  One sqlite file holds:

* ``campaigns`` — named sweep families (``capacity_sweep/ntp+ntp/...``).
* ``runs`` — one row per executed sweep: executor kind, engine backend,
  engine version, trial-batch width, job count, shard accounting
  (total/computed/cached/retries/failures), a content fingerprint over the
  run's rows, and a metrics snapshot from :mod:`repro.obs`.
* ``shard_results`` — every shard's params, seed, result (or error
  record), and result-cache key, in merge order.
* ``checkpoints`` — the warm-start prefix checkpoint digests the run
  restored from (the same digests folded into result-cache keys).
* ``artifacts`` — benchmark JSON artifacts (``conftest.artifact``),
  stamped with engine backend and trial-batch width.
* ``analysis_cache`` — memoized analysis query results, invalidated by
  the store's content fingerprint (see :mod:`repro.analysis.reports`).

Everything stored is *standard* JSON (NaN canonicalized to null via
:mod:`repro.analysis.results_io`), so sqlite's JSON functions and strict
external parsers can query rows directly.

Determinism is the design center: two runs of the same seeded sweep store
byte-identical ``params_json``/``result_json`` rows and therefore equal
run fingerprints — which is what lets the regression reporter say
"identical" instead of "probably fine".
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.results_io import _encode
from ..errors import ReproError
from ..runner.shard import Shard, canonical_json

#: Schema version, stored in ``PRAGMA user_version``; bump on breaking DDL
#: changes so old files are refused loudly instead of misread.
SCHEMA_VERSION = 1

#: How long a writer waits on another process's transaction before
#: sqlite reports the database locked (file-backed stores only).
BUSY_TIMEOUT_MS = 5_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id   INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS runs (
    id              INTEGER PRIMARY KEY,
    campaign_id     INTEGER NOT NULL REFERENCES campaigns(id),
    started_at      REAL NOT NULL,
    wall_seconds    REAL NOT NULL,
    executor        TEXT NOT NULL,
    engine          TEXT,
    engine_version  TEXT NOT NULL,
    batch_size      INTEGER NOT NULL,
    jobs            INTEGER NOT NULL,
    shards_total    INTEGER NOT NULL,
    shards_computed INTEGER NOT NULL,
    shards_cached   INTEGER NOT NULL,
    retries         INTEGER NOT NULL,
    failures        INTEGER NOT NULL,
    fingerprint     TEXT NOT NULL,
    metrics_json    TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_campaign ON runs (campaign_id, id);
CREATE TABLE IF NOT EXISTS shard_results (
    run_id      INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    shard_index INTEGER NOT NULL,
    seed        INTEGER NOT NULL,
    params_json TEXT NOT NULL,
    result_json TEXT,
    error_json  TEXT,
    cache_key   TEXT,
    PRIMARY KEY (run_id, shard_index)
);
CREATE TABLE IF NOT EXISTS checkpoints (
    run_id      INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    prefix_json TEXT NOT NULL,
    digest      TEXT NOT NULL,
    PRIMARY KEY (run_id, prefix_json)
);
CREATE TABLE IF NOT EXISTS artifacts (
    id           INTEGER PRIMARY KEY,
    name         TEXT NOT NULL,
    created_at   REAL NOT NULL,
    engine       TEXT,
    batch_size   INTEGER,
    payload_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS artifacts_by_name ON artifacts (name, id);
CREATE TABLE IF NOT EXISTS analysis_cache (
    key          TEXT PRIMARY KEY,
    fingerprint  TEXT NOT NULL,
    payload_json TEXT NOT NULL,
    created_at   REAL NOT NULL
);
"""


def _result_json(value: Any) -> str:
    """Standard-JSON encoding of one shard result (NaN canonicalized)."""
    return json.dumps(_encode(value), sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


@dataclass(frozen=True)
class RunRecord:
    """One recorded sweep run (the ``runs`` table, resolved)."""

    id: int
    campaign: str
    started_at: float
    wall_seconds: float
    executor: str
    engine: Optional[str]
    engine_version: str
    batch_size: int
    jobs: int
    shards_total: int
    shards_computed: int
    shards_cached: int
    retries: int
    failures: int
    fingerprint: str
    metrics: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class ShardRow:
    """One shard's stored outcome, in merge order."""

    run_id: int
    index: int
    seed: int
    params: Dict[str, Any]
    result: Optional[Dict[str, Any]]
    error: Optional[Dict[str, Any]]
    cache_key: Optional[str]

    @property
    def params_json(self) -> str:
        return canonical_json(self.params)


@dataclass(frozen=True)
class ArtifactRecord:
    """One recorded benchmark artifact."""

    id: int
    name: str
    created_at: float
    engine: Optional[str]
    batch_size: Optional[int]
    payload: Dict[str, Any]


@dataclass(frozen=True)
class CampaignSummary:
    """One campaign with its run accounting (the ``campaigns`` listing)."""

    name: str
    runs: int
    last_run_id: int
    last_started_at: float
    last_fingerprint: str


@dataclass
class MemoStats:
    """Memoized-analysis accounting (tests and the CI round-trip assert it)."""

    hits: int = 0
    misses: int = 0


def run_fingerprint(
    shards: Sequence[Shard], results: Sequence[Optional[Dict[str, Any]]]
) -> str:
    """SHA-256 over the run's (index, seed, params, result) rows.

    Deterministic by the runner contract: a seeded sweep merges
    bit-identical results in shard order at any ``jobs`` value, so two runs
    of the same sweep produce the same fingerprint — and a differing
    fingerprint is a real behavioural difference, not scheduling noise.
    Wall-clock fields (timestamps, shard seconds) never participate.
    """
    material = hashlib.sha256()
    for shard, result in zip(shards, results):
        material.update(
            canonical_json(
                [shard.index, shard.seed, shard.params]
            ).encode("utf-8")
        )
        material.update(b"\x00")
        material.update(_result_json(result).encode("utf-8"))
        material.update(b"\x01")
    return material.hexdigest()


class CampaignStore:
    """A sqlite-backed store of campaigns, runs, shard results, and artifacts.

    ``path`` may be a filesystem path (created on first open, parents
    included) or ``":memory:"`` for tests.  The store is a plain context
    manager; writes are transactional per call.
    """

    def __init__(self, path: Union[str, Path] = ":memory:"):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(self.path)
        self._db.execute("PRAGMA foreign_keys = ON")
        if self.path != ":memory:":
            # Concurrent writers (service dispatchers, parallel CLI runs)
            # share one file: wait out each other's write transactions
            # instead of failing fast, and journal in WAL mode so readers
            # never block a writer.  Fail-soft — a filesystem that cannot
            # take WAL (some network mounts) keeps the default journal.
            self._db.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
            try:
                self._db.execute("PRAGMA journal_mode = WAL")
            except sqlite3.OperationalError:
                pass
        version = self._db.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, SCHEMA_VERSION):
            self._db.close()
            raise ReproError(
                f"campaign store {self.path} has schema version {version}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        with self._db:
            self._db.executescript(_SCHEMA)
            self._db.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        self.memo = MemoStats()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingest -----------------------------------------------------------

    def record_run(
        self,
        campaign: str,
        shards: Sequence[Shard],
        results: Sequence[Optional[Dict[str, Any]]],
        *,
        executor: str,
        engine: Optional[str],
        engine_version: str,
        batch_size: int = 1,
        jobs: int = 1,
        shards_computed: int = 0,
        shards_cached: int = 0,
        retries: int = 0,
        failures: int = 0,
        wall_seconds: float = 0.0,
        metrics: Optional[Dict[str, Any]] = None,
        digests: Optional[Dict[str, str]] = None,
        cache_keys: Optional[Sequence[Optional[str]]] = None,
        started_at: Optional[float] = None,
    ) -> int:
        """Store one completed sweep run; returns the new run id.

        ``shards`` and ``results`` are the executor's inputs and merged
        outputs, aligned by slot; an error record in a slot lands in
        ``error_json`` with ``result_json`` null.  ``digests`` maps
        canonical prefix JSON to checkpoint digest (warm-start executors).
        ``cache_keys`` aligns per-slot result-cache keys, where known.
        """
        from ..runner.pool import SHARD_ERROR_KEY, is_error_record

        if len(shards) != len(results):
            raise ReproError(
                f"shards/results length mismatch: {len(shards)} != {len(results)}"
            )
        fingerprint = run_fingerprint(shards, results)
        now = time.time() if started_at is None else started_at
        with self._db:
            row = self._db.execute(
                "SELECT id FROM campaigns WHERE name = ?", (campaign,)
            ).fetchone()
            if row is None:
                campaign_id = self._db.execute(
                    "INSERT INTO campaigns (name) VALUES (?)", (campaign,)
                ).lastrowid
            else:
                campaign_id = row[0]
            run_id = self._db.execute(
                "INSERT INTO runs (campaign_id, started_at, wall_seconds,"
                " executor, engine, engine_version, batch_size, jobs,"
                " shards_total, shards_computed, shards_cached, retries,"
                " failures, fingerprint, metrics_json)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id, now, wall_seconds, executor, engine,
                    engine_version, batch_size, jobs, len(shards),
                    shards_computed, shards_cached, retries, failures,
                    fingerprint,
                    _result_json(metrics) if metrics is not None else None,
                ),
            ).lastrowid
            for slot, (shard, result) in enumerate(zip(shards, results)):
                key = cache_keys[slot] if cache_keys is not None else None
                if is_error_record(result):
                    result_json = None
                    error_json = _result_json(result[SHARD_ERROR_KEY])
                else:
                    result_json = _result_json(result)
                    error_json = None
                self._db.execute(
                    "INSERT INTO shard_results (run_id, shard_index, seed,"
                    " params_json, result_json, error_json, cache_key)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id, shard.index, shard.seed,
                        canonical_json(shard.params), result_json, error_json,
                        key,
                    ),
                )
            for prefix_json, digest in (digests or {}).items():
                self._db.execute(
                    "INSERT INTO checkpoints (run_id, prefix_json, digest)"
                    " VALUES (?, ?, ?)",
                    (run_id, prefix_json, digest),
                )
        return run_id

    def record_artifact(
        self,
        name: str,
        payload: Dict[str, Any],
        *,
        engine: Optional[str] = None,
        batch_size: Optional[int] = None,
        created_at: Optional[float] = None,
    ) -> int:
        """Store one benchmark artifact payload; returns its row id."""
        if engine is None and isinstance(payload, dict):
            engine = payload.get("engine_backend")
        if batch_size is None and isinstance(payload, dict):
            batch_size = payload.get("trial_batch_size")
        with self._db:
            return self._db.execute(
                "INSERT INTO artifacts (name, created_at, engine, batch_size,"
                " payload_json) VALUES (?, ?, ?, ?, ?)",
                (
                    name,
                    time.time() if created_at is None else created_at,
                    engine,
                    batch_size,
                    _result_json(payload),
                ),
            ).lastrowid

    # -- queries ----------------------------------------------------------

    def campaigns(self) -> List[CampaignSummary]:
        """Every campaign, with run counts and its latest run's identity."""
        rows = self._db.execute(
            "SELECT c.name, COUNT(r.id), MAX(r.id)"
            " FROM campaigns c JOIN runs r ON r.campaign_id = c.id"
            " GROUP BY c.name ORDER BY c.name"
        ).fetchall()
        out = []
        for name, count, last_id in rows:
            started_at, fingerprint = self._db.execute(
                "SELECT started_at, fingerprint FROM runs WHERE id = ?",
                (last_id,),
            ).fetchone()
            out.append(
                CampaignSummary(
                    name=name, runs=count, last_run_id=last_id,
                    last_started_at=started_at, last_fingerprint=fingerprint,
                )
            )
        return out

    def _run_from_row(self, row: tuple) -> RunRecord:
        (run_id, campaign, started_at, wall_seconds, executor, engine,
         engine_version, batch_size, jobs, total, computed, cached, retries,
         failures, fingerprint, metrics_json) = row
        return RunRecord(
            id=run_id, campaign=campaign, started_at=started_at,
            wall_seconds=wall_seconds, executor=executor, engine=engine,
            engine_version=engine_version, batch_size=batch_size, jobs=jobs,
            shards_total=total, shards_computed=computed,
            shards_cached=cached, retries=retries, failures=failures,
            fingerprint=fingerprint,
            metrics=json.loads(metrics_json) if metrics_json else None,
        )

    _RUN_COLUMNS = (
        "r.id, c.name, r.started_at, r.wall_seconds, r.executor, r.engine,"
        " r.engine_version, r.batch_size, r.jobs, r.shards_total,"
        " r.shards_computed, r.shards_cached, r.retries, r.failures,"
        " r.fingerprint, r.metrics_json"
    )

    def run(self, run_id: int) -> RunRecord:
        row = self._db.execute(
            f"SELECT {self._RUN_COLUMNS} FROM runs r"
            " JOIN campaigns c ON c.id = r.campaign_id WHERE r.id = ?",
            (run_id,),
        ).fetchone()
        if row is None:
            raise ReproError(f"no run {run_id} in campaign store {self.path}")
        return self._run_from_row(row)

    def runs(self, campaign: str) -> List[RunRecord]:
        """All runs of ``campaign``, oldest first."""
        rows = self._db.execute(
            f"SELECT {self._RUN_COLUMNS} FROM runs r"
            " JOIN campaigns c ON c.id = r.campaign_id"
            " WHERE c.name = ? ORDER BY r.id",
            (campaign,),
        ).fetchall()
        return [self._run_from_row(row) for row in rows]

    def latest_runs(self, campaign: str, n: int = 2) -> List[RunRecord]:
        """The newest ``n`` runs of ``campaign``, newest first."""
        rows = self._db.execute(
            f"SELECT {self._RUN_COLUMNS} FROM runs r"
            " JOIN campaigns c ON c.id = r.campaign_id"
            " WHERE c.name = ? ORDER BY r.id DESC LIMIT ?",
            (campaign, n),
        ).fetchall()
        return [self._run_from_row(row) for row in rows]

    def shard_rows(self, run_id: int) -> List[ShardRow]:
        """One run's stored shard rows, in merge order."""
        rows = self._db.execute(
            "SELECT shard_index, seed, params_json, result_json, error_json,"
            " cache_key FROM shard_results WHERE run_id = ?"
            " ORDER BY shard_index",
            (run_id,),
        ).fetchall()
        return [
            ShardRow(
                run_id=run_id, index=index, seed=seed,
                params=json.loads(params_json),
                result=json.loads(result_json) if result_json else None,
                error=json.loads(error_json) if error_json else None,
                cache_key=cache_key,
            )
            for index, seed, params_json, result_json, error_json, cache_key
            in rows
        ]

    def checkpoint_digests(self, run_id: int) -> Dict[str, str]:
        """prefix JSON -> checkpoint digest for one run."""
        return dict(
            self._db.execute(
                "SELECT prefix_json, digest FROM checkpoints WHERE run_id = ?",
                (run_id,),
            ).fetchall()
        )

    def artifact_names(self) -> List[str]:
        return [
            name for (name,) in self._db.execute(
                "SELECT DISTINCT name FROM artifacts ORDER BY name"
            ).fetchall()
        ]

    def artifacts(self, name: Optional[str] = None) -> List[ArtifactRecord]:
        """Recorded artifacts (optionally one name's history), oldest first."""
        if name is None:
            rows = self._db.execute(
                "SELECT id, name, created_at, engine, batch_size, payload_json"
                " FROM artifacts ORDER BY id"
            ).fetchall()
        else:
            rows = self._db.execute(
                "SELECT id, name, created_at, engine, batch_size, payload_json"
                " FROM artifacts WHERE name = ? ORDER BY id",
                (name,),
            ).fetchall()
        return [
            ArtifactRecord(
                id=row_id, name=row_name, created_at=created_at,
                engine=engine, batch_size=batch_size,
                payload=json.loads(payload_json),
            )
            for row_id, row_name, created_at, engine, batch_size, payload_json
            in rows
        ]

    # -- memoized analysis -------------------------------------------------

    def fingerprint(self) -> str:
        """Content fingerprint of the whole store (memoization key input).

        Any new run or artifact changes it, so memoized analysis can never
        serve stale answers; the fingerprints of the runs themselves make
        it content-derived rather than a bare row count.
        """
        material = hashlib.sha256()
        for count, last_id, fingerprints in (
            self._db.execute(
                "SELECT COUNT(*), COALESCE(MAX(id), 0),"
                " COALESCE(GROUP_CONCAT(fingerprint), '') FROM runs"
            ).fetchall()
        ):
            material.update(f"{count}:{last_id}:{fingerprints}".encode())
        for count, last_id in self._db.execute(
            "SELECT COUNT(*), COALESCE(MAX(id), 0) FROM artifacts"
        ).fetchall():
            material.update(f"a{count}:{last_id}".encode())
        return material.hexdigest()

    def memo_get(self, key: str, fingerprint: str) -> Optional[Any]:
        """The memoized payload for ``key`` at ``fingerprint``, or None."""
        row = self._db.execute(
            "SELECT fingerprint, payload_json FROM analysis_cache WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None or row[0] != fingerprint:
            self.memo.misses += 1
            return None
        self.memo.hits += 1
        return json.loads(row[1])

    def memo_put(self, key: str, fingerprint: str, payload: Any) -> None:
        """Store a memoized payload (replacing any stale entry for ``key``)."""
        with self._db:
            self._db.execute(
                "INSERT INTO analysis_cache (key, fingerprint, payload_json,"
                " created_at) VALUES (?, ?, ?, ?)"
                " ON CONFLICT(key) DO UPDATE SET fingerprint = excluded.fingerprint,"
                " payload_json = excluded.payload_json,"
                " created_at = excluded.created_at",
                (key, fingerprint, _result_json(payload), time.time()),
            )

    def memoized(self, key: str, compute) -> Any:
        """``compute()``'s JSON-compatible result, served from the memo table.

        The memo key is ``key`` + the store fingerprint: a second identical
        query against an unchanged store is answered without touching the
        run tables (``store.memo.hits`` counts it); any ingest invalidates.
        """
        fingerprint = self.fingerprint()
        cached = self.memo_get(key, fingerprint)
        if cached is not None:
            return cached
        value = compute()
        self.memo_put(key, fingerprint, value)
        return value
