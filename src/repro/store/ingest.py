"""Ingest wiring: how sweep runs and benchmark artifacts reach the store.

The executors in :mod:`repro.runner` call :func:`record_sweep` after every
merge; ``benchmarks/conftest.artifact`` calls :func:`record_artifact` per
benchmark.  Both are **fail-soft**: a broken or read-only store costs the
history entry, never the sweep — mirroring the
:class:`~repro.runner.cache.ResultCache` contract that results must not
depend on filesystem health.

Store resolution mirrors the result cache's env convention:

* an explicit :class:`~repro.store.db.CampaignStore` always wins;
* otherwise the process default applies — set programmatically with
  :func:`set_default_store` / :func:`use_default_store` (the CLI's
  ``--store`` does this), or from the ``REPRO_STORE`` env var (a path to
  the sqlite file; ``0`` / ``off`` / ``none`` disable);
* with neither, nothing is recorded.

Pass :data:`DISABLED` to suppress recording for one call even when a
default store is installed — the executors use it internally so a sweep
that delegates (warm start -> pool, batch -> pool) is recorded exactly
once, by the outermost executor.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from .db import CampaignStore

#: Env var naming the default campaign store file.
STORE_ENV = "REPRO_STORE"

#: Values of ``REPRO_STORE`` that mean "no store".
_DISABLING_VALUES = ("", "0", "off", "none")

#: Sentinel: suppress recording for this call even if a default exists.
DISABLED = object()

#: Programmatic default (takes precedence over the env var when set;
#: may hold :data:`DISABLED` to force recording off).
_default_store: Union[CampaignStore, None, object] = None
_default_installed = False

#: Env-derived store, memoized per (env value) so repeated sweeps in one
#: process share a connection instead of reopening the file per call.
_env_store: Optional[CampaignStore] = None
_env_store_path: Optional[str] = None


def set_default_store(
    store: Union[CampaignStore, None, object]
) -> Union[CampaignStore, None, object]:
    """Install ``store`` as the process default; returns the previous one.

    ``None`` uninstalls, restoring env-var resolution; :data:`DISABLED`
    installs a default that records nothing — the CLI's ``--no-store``,
    which must override ``$REPRO_STORE`` rather than fall back to it.
    """
    global _default_store, _default_installed
    previous = _default_store if _default_installed else None
    _default_store = store
    _default_installed = store is not None
    return previous


@contextmanager
def use_default_store(store: Optional[CampaignStore]) -> Iterator[Optional[CampaignStore]]:
    """Scoped :func:`set_default_store` (the CLI wraps each sweep in this)."""
    previous = set_default_store(store)
    try:
        yield store
    finally:
        set_default_store(previous)


def get_default_store() -> Optional[CampaignStore]:
    """The process-default store, or None when recording is off."""
    global _env_store, _env_store_path
    if _default_installed:
        return None if _default_store is DISABLED else _default_store
    path = os.environ.get(STORE_ENV)
    if path is None or path.lower() in _DISABLING_VALUES:
        return None
    if _env_store is None or _env_store_path != path:
        try:
            _env_store = CampaignStore(path)
            _env_store_path = path
        except Exception:
            return None  # fail-soft: an unopenable store records nothing
    return _env_store


def resolve_store(
    store: Union[CampaignStore, None, object]
) -> Optional[CampaignStore]:
    """An executor's effective store: explicit, default, or none."""
    if store is DISABLED:
        return None
    if store is not None:
        return store  # type: ignore[return-value]
    return get_default_store()


def campaign_name(cache_tag: Optional[str], identity: str) -> str:
    """Default campaign name: the cache tag minus its ``/vN`` suffix.

    ``capacity_sweep/v1`` -> ``capacity_sweep``; with no tag, the worker's
    dotted identity names the campaign.
    """
    if not cache_tag:
        return identity
    base, sep, version = cache_tag.rpartition("/")
    if sep and version.startswith("v") and version[1:].isdigit():
        return base
    return cache_tag


def record_sweep(
    store: Union[CampaignStore, None, object],
    campaign: str,
    shards: Sequence,
    results: Sequence,
    *,
    executor: str,
    engine: Optional[str] = None,
    batch_size: int = 1,
    jobs: int = 1,
    shards_computed: int = 0,
    shards_cached: int = 0,
    retries: int = 0,
    failures: int = 0,
    wall_seconds: float = 0.0,
    registry=None,
    trace=None,
    digests: Optional[Dict[str, str]] = None,
    cache_keys: Optional[Sequence[Optional[str]]] = None,
) -> Optional[int]:
    """Record one completed sweep run, fail-soft; returns the run id or None.

    ``engine`` defaults to the first shard's ``engine`` param (every sweep
    experiment stamps one) and falls back to the process default backend.
    ``registry``'s snapshot is stored as the run's metrics; the recording
    itself is accounted under ``runner.store.*`` and a ``runner.store``
    trace event, so history ingestion is observable like everything else.
    """
    target = resolve_store(store)
    if target is None or not shards:
        return None
    if engine is None:
        engine = _sweep_engine(shards)
    from ..cache import ENGINE_VERSION

    metrics_snapshot = None
    if registry is not None and registry.enabled:
        metrics_snapshot = registry.as_dict()
    try:
        run_id = target.record_run(
            campaign,
            list(shards),
            list(results),
            executor=executor,
            engine=engine,
            engine_version=str(ENGINE_VERSION),
            batch_size=batch_size,
            jobs=jobs,
            shards_computed=shards_computed,
            shards_cached=shards_cached,
            retries=retries,
            failures=failures,
            wall_seconds=wall_seconds,
            metrics=metrics_snapshot,
            digests=digests,
            cache_keys=cache_keys,
        )
    except Exception:
        if registry is not None:
            registry.counter("runner.store.errors").inc()
        return None
    if registry is not None:
        registry.counter("runner.store.runs").inc()
        registry.counter("runner.store.shards").inc(len(shards))
    if trace is not None:
        trace.emit("runner.store", campaign=campaign, run=run_id,
                   shards=len(shards))
    return run_id


def _sweep_engine(shards: Sequence) -> str:
    """The sweep's engine backend, from shard params or the process default."""
    try:
        engine = shards[0].params.get("engine")
    except (AttributeError, IndexError):
        engine = None
    if engine:
        return engine
    from ..engine import default_backend

    return default_backend()


def stamp_artifact(result: Any) -> Any:
    """A *copy* of ``result`` stamped with engine backend and batch width.

    Benchmarks that already pin ``engine_backend`` / ``trial_batch_size``
    keep their values.  Non-dict results pass through untouched.  The input
    is never mutated — benchmark code frequently asserts on the very dict
    it hands to ``artifact()``.
    """
    if not isinstance(result, dict):
        return result
    from ..engine import default_backend

    stamped = dict(result)
    stamped.setdefault("engine_backend", default_backend())
    stamped.setdefault("trial_batch_size", 1)
    return stamped


def record_artifact(
    name: str,
    payload: Any,
    store: Union[CampaignStore, None, object] = None,
) -> Optional[int]:
    """Record one benchmark artifact, fail-soft; returns its row id or None."""
    target = resolve_store(store)
    if target is None or not isinstance(payload, dict):
        return None
    try:
        return target.record_artifact(name, payload)
    except Exception:
        return None
