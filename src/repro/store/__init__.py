"""Persistent campaign store: queryable history for every sweep and bench.

``repro.store`` is the storage layer the reporting pipeline
(:mod:`repro.analysis.reports`, ``python -m repro report`` /
``python -m repro campaigns``) reads from:

* :class:`CampaignStore` — the sqlite database (campaigns, runs, shard
  results, checkpoint digests, benchmark artifacts, memoized analysis).
* :func:`record_sweep` / :func:`record_artifact` — the fail-soft ingest
  hooks called by :mod:`repro.runner`'s executors and
  ``benchmarks/conftest.artifact``.
* ``REPRO_STORE`` / :func:`set_default_store` / :func:`use_default_store`
  — how a process opts into recording (see :mod:`repro.store.ingest`).

See ``docs/campaigns.md`` for the schema and the report commands.
"""

from .db import (
    ArtifactRecord,
    CampaignStore,
    CampaignSummary,
    RunRecord,
    SCHEMA_VERSION,
    ShardRow,
    run_fingerprint,
)
from .ingest import (
    DISABLED,
    STORE_ENV,
    campaign_name,
    get_default_store,
    record_artifact,
    record_sweep,
    resolve_store,
    set_default_store,
    stamp_artifact,
    use_default_store,
)

__all__ = [
    "ArtifactRecord",
    "CampaignStore",
    "CampaignSummary",
    "RunRecord",
    "SCHEMA_VERSION",
    "ShardRow",
    "run_fingerprint",
    "DISABLED",
    "STORE_ENV",
    "campaign_name",
    "get_default_store",
    "record_artifact",
    "record_sweep",
    "resolve_store",
    "set_default_store",
    "stamp_artifact",
    "use_default_store",
]
