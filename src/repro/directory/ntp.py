"""A directory version of NTP+NTP — the paper's Section VI-B hypothesis.

The channel mechanics transfer one-to-one from the inclusive LLC to the
directory *if* prefetch-allocated directory entries are installed as
eviction candidates: the sender's prefetch then displaces the receiver's
directory entry, which back-invalidates the receiver's L1 copy, and the
receiver's next timed prefetch misses.  Under a safe insertion policy the
displacement is no longer targeted and the channel decays to noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ChannelError
from .hierarchy import DirectoryConfig, DirectoryHierarchy

#: Cycle gap between protocol steps (generous: correctness-focused model).
STEP_GAP = 2_000


@dataclass
class DirectoryExchangeResult:
    """Outcome of a directory NTP+NTP exchange."""

    sent_bits: List[int]
    received_bits: List[int]

    @property
    def bit_error_rate(self) -> float:
        errors = sum(1 for a, b in zip(self.sent_bits, self.received_bits) if a != b)
        return errors / len(self.sent_bits) if self.sent_bits else 0.0

    @property
    def works(self) -> bool:
        """The channel is usable when essentially every bit arrives."""
        return self.bit_error_rate < 0.05


def run_directory_ntp_exchange(
    message_bits: Sequence[int],
    config: DirectoryConfig = None,
    seed: int = 0,
) -> DirectoryExchangeResult:
    """Exchange ``message_bits`` over the directory conflict channel.

    Runs a lock-step (turn-based) exchange — the timing subtleties of the
    inclusive-LLC channel are studied elsewhere; here the question is purely
    whether directory replacement state can carry bits at all.
    """
    bits = list(message_bits)
    if not bits:
        raise ChannelError("cannot transmit an empty message")
    if config is None:
        config = DirectoryConfig()
    hierarchy = DirectoryHierarchy(config)
    rng = random.Random(seed)
    mapping = hierarchy.directory_mapping

    # Pick congruent sender/receiver lines in one directory set (ground
    # truth, as for the LLC channel: both parties can build eviction sets).
    base = rng.randrange(1 << 20) << 12
    receiver_line = base
    sender_line = None
    probe = base
    while sender_line is None:
        probe += 1 << 12
        if mapping.congruent(probe, receiver_line):
            sender_line = probe
    # Fill the directory set so there are no free ways.  A directory entry
    # only lives while the line is private-cache resident, and congruent
    # lines share an L1 set — so one core can pin at most l1.ways entries.
    # Helper threads on two spare cores pin enough entries together.
    fillers: List[int] = []
    probe = base + (1 << 30)
    needed = config.directory.ways + 4
    while len(fillers) < needed:
        probe += 1 << 12
        if mapping.congruent(probe, receiver_line):
            fillers.append(probe)

    now = 0
    filler_cores = [2 % config.cores, 3 % config.cores]
    for _ in range(2):
        for i, line in enumerate(fillers):
            hierarchy.load(filler_cores[i % len(filler_cores)], line, now)
            now += STEP_GAP

    threshold = (
        config.latency.measure_overhead
        + (config.latency.llc_hit + config.latency.dram) // 2
    )
    received: List[int] = []
    # Receiver prepares: its entry becomes the (hypothetical) candidate.
    hierarchy.prefetchnta(1, receiver_line, now)
    now += STEP_GAP
    for bit in bits:
        if bit not in (0, 1):
            raise ChannelError(f"bits must be 0 or 1, got {bit!r}")
        if bit:
            hierarchy.prefetchnta(0, sender_line, now)
        now += STEP_GAP
        result = hierarchy.prefetchnta(1, receiver_line, now)
        measured = config.latency.measure_overhead + result.latency
        received.append(1 if measured > threshold else 0)
        now += STEP_GAP
    return DirectoryExchangeResult(sent_bits=bits, received_bits=received)
