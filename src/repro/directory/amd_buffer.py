"""The AMD non-temporal prefetch buffer hypothesis (paper §VI-B, last note).

"According to [the AMD optimization guide], on some AMD processors
prefetched data are placed into a software-invisible buffer (instead of
cache/directory).  Therefore, it may be possible to build conflicts using
PREFETCHNTA in this buffer and create a new covert channel."

This module models that hypothetical: a small, fully-associative,
LRU-managed NT buffer shared by the cores.  Because the buffer is tiny and
fully associative, *any* handful of distinct lines conflicts — no eviction
sets, no slice hashes, no set targeting at all — which would make the
resulting channel even easier to set up than NTP+NTP.  The exchange below
demonstrates the mechanics and measures the buffer-capacity requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ChannelError, ConfigurationError
from ..mem.address import line_address

#: Latency constants for the standalone buffer model (cycles).
BUFFER_HIT = 12
MEMORY_FILL = 165
MEASURE_OVERHEAD = 62


class AMDPrefetchBuffer:
    """A software-invisible, fully-associative NT-prefetch buffer."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: List[int] = []  # MRU at the end

    def __contains__(self, addr: int) -> bool:
        return line_address(addr) in self._entries

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def prefetchnta(self, addr: int) -> int:
        """NT prefetch into the buffer; returns the raw latency.

        A hit refreshes LRU; a miss fills from memory, evicting the LRU
        entry when full.
        """
        tag = line_address(addr)
        if tag in self._entries:
            self._entries.remove(tag)
            self._entries.append(tag)
            return BUFFER_HIT
        self._entries.append(tag)
        if len(self._entries) > self.capacity:
            self._entries.pop(0)
        return MEMORY_FILL

    def timed_prefetchnta(self, addr: int) -> int:
        return MEASURE_OVERHEAD + self.prefetchnta(addr)


@dataclass
class BufferExchangeResult:
    """Outcome of one buffer-channel exchange."""

    sent_bits: List[int]
    received_bits: List[int]
    #: Sender prefetches needed per "1" bit (the conflict cost).
    conflict_cost: int = 0

    @property
    def bit_error_rate(self) -> float:
        errors = sum(1 for a, b in zip(self.sent_bits, self.received_bits) if a != b)
        return errors / len(self.sent_bits) if self.sent_bits else 0.0

    @property
    def works(self) -> bool:
        return self.bit_error_rate < 0.05


def run_amd_buffer_exchange(
    message_bits: Sequence[int],
    capacity: int = 8,
    sender_lines: Optional[int] = None,
) -> BufferExchangeResult:
    """Lock-step exchange over the hypothetical buffer.

    The receiver parks its line in the buffer; the sender signals "1" by
    prefetching ``sender_lines`` arbitrary distinct lines (default: exactly
    the buffer capacity), which flushes the receiver's entry out; the
    receiver's timed prefetch reads hit-vs-fill.
    """
    bits = list(message_bits)
    if not bits:
        raise ChannelError("cannot transmit an empty message")
    if sender_lines is None:
        sender_lines = capacity
    buffer = AMDPrefetchBuffer(capacity)
    receiver_line = 0x1000
    sender_pool = [0x100000 + i * 64 for i in range(sender_lines)]
    threshold = MEASURE_OVERHEAD + (BUFFER_HIT + MEMORY_FILL) // 2
    received: List[int] = []
    buffer.prefetchnta(receiver_line)  # park dr
    for bit in bits:
        if bit not in (0, 1):
            raise ChannelError(f"bits must be 0 or 1, got {bit!r}")
        if bit:
            for line in sender_pool:
                buffer.prefetchnta(line)
        measured = buffer.timed_prefetchnta(receiver_line)
        received.append(1 if measured > threshold else 0)
    return BufferExchangeResult(
        sent_bits=bits,
        received_bits=received,
        conflict_cost=sender_lines,
    )
