"""A minimal non-inclusive LLC hierarchy with a snoop-filter directory.

Server-class model (Skylake-SP style, simplified to the parts that matter
for the Section VI-B discussion):

* Per-core private L1 caches.
* A shared *coherence directory* (snoop filter) tracking every line present
  in any private cache.  Evicting a directory entry back-invalidates the
  private copies — the lever a directory conflict attack uses ("Attack
  Directories, Not Caches", Yan et al.).
* A non-inclusive LLC acting as a victim cache: lines enter it when evicted
  from a private cache, not on fills.
* ``PREFETCHNTA`` installs the line in the requesting core's L1 and
  allocates a directory entry, bypassing the LLC (per the Intel manual).

The directory replacement policy is configurable; whether prefetch-allocated
entries become instant eviction candidates is exactly the unknown the paper
flags ("verifying this vulnerability requires comprehensively understanding
the replacement policy of the directory").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cache.cachelevel import CacheLevel
from ..cache.hierarchy import Level, MemOpResult
from ..cache.plru import TreePLRU
from ..cache.qlru import QuadAgeLRU
from ..config import CacheGeometry, LatencyProfile
from ..errors import ConfigurationError
from ..mem.address import line_address
from ..mem.layout import CacheSetMapping


@dataclass(frozen=True)
class DirectoryConfig:
    """Geometry and policy knobs of the directory machine."""

    cores: int = 4
    l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(sets=64, ways=8))
    #: Snoop-filter directory: wider than the private caches it covers.
    directory: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(sets=2048, ways=12, slices=1)
    )
    #: Non-inclusive victim LLC.
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(sets=2048, ways=11, slices=1)
    )
    latency: LatencyProfile = field(default_factory=LatencyProfile)
    #: Age of directory entries allocated by demand fills.
    directory_load_insert_age: int = 2
    #: Age of directory entries allocated by PREFETCHNTA — the paper's open
    #: question.  3 models the vulnerable hypothesis (like the inclusive
    #: LLC); 2 models a safe design.
    directory_prefetch_insert_age: int = 3

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")


class DirectoryHierarchy:
    """Cores' L1s in front of a shared directory and a victim LLC."""

    def __init__(self, config: DirectoryConfig):
        self.config = config
        lat = config.latency
        directory_policy = lambda ways: QuadAgeLRU(  # noqa: E731
            ways,
            load_insert_age=config.directory_load_insert_age,
            prefetch_insert_age=config.directory_prefetch_insert_age,
        )
        self.l1_mapping = CacheSetMapping(config.l1)
        self.directory_mapping = CacheSetMapping(config.directory)
        self.llc_mapping = CacheSetMapping(config.llc)
        self.l1s: List[CacheLevel] = [
            CacheLevel(f"L1[{c}]", config.l1, self.l1_mapping, TreePLRU)
            for c in range(config.cores)
        ]
        self.directory = CacheLevel(
            "DIR", config.directory, self.directory_mapping, directory_policy
        )
        self.llc = CacheLevel("LLC", config.llc, self.llc_mapping, QuadAgeLRU)
        self._lat = lat

    # -- internals ---------------------------------------------------------

    def _dir_back_invalidate(self, tag: int) -> None:
        """Directory eviction: purge the line from every private cache."""
        for level in self.l1s:
            level.invalidate(tag)

    def _allocate_directory(self, addr: int, now: int, is_prefetch: bool) -> None:
        evicted, inserted = self.directory.fill(addr, now, is_prefetch=is_prefetch)
        if evicted is not None:
            self._dir_back_invalidate(evicted)
        if not inserted:  # pragma: no cover - all-busy corner
            self._dir_back_invalidate(line_address(addr))

    def _fill_l1(self, core: int, addr: int, now: int) -> None:
        """Fill a private L1; its victim spills into the non-inclusive LLC."""
        evicted, _ = self.l1s[core].fill(addr, now)
        if evicted is None:
            return
        # The victim leaves the private domain: directory entry dies, the
        # line lands in the LLC (victim-cache insertion).
        if not any(l1.contains(evicted) for l1 in self.l1s):
            self.directory.invalidate(evicted)
            if not self.llc.contains(evicted):
                spilled, _ = self.llc.fill(evicted, now)
                del spilled  # non-inclusive: LLC evictions are silent

    # -- instruction semantics ----------------------------------------------

    def load(self, core: int, addr: int, now: int = 0) -> MemOpResult:
        tag = line_address(addr)
        l1 = self.l1s[core]
        hit_set = l1.lookup(addr)
        if hit_set is not None:
            hit_set.touch(hit_set.find(tag))
            return MemOpResult(Level.L1, self._lat.l1_hit)
        hit_set = self.llc.lookup(addr)
        if hit_set is not None:
            # Non-inclusive: promote from the LLC back into the private
            # domain (the LLC copy is dropped, a directory entry appears).
            hit_set.touch(hit_set.find(tag))
            self.llc.invalidate(addr)
            if not self.directory.contains(addr):
                self._allocate_directory(addr, now, is_prefetch=False)
            self._fill_l1(core, addr, now)
            return MemOpResult(Level.LLC, self._lat.llc_hit)
        if self.directory.contains(addr):
            # Present in another core's private cache: directory-assisted
            # cache-to-cache transfer at LLC-like latency.
            self._fill_l1(core, addr, now)
            return MemOpResult(Level.LLC, self._lat.llc_hit)
        self._allocate_directory(addr, now, is_prefetch=False)
        self._fill_l1(core, addr, now)
        return MemOpResult(Level.DRAM, self._lat.dram)

    def prefetchnta(self, core: int, addr: int, now: int = 0) -> MemOpResult:
        """PREFETCHNTA: L1 + directory only, never the LLC (Section VI-B)."""
        tag = line_address(addr)
        l1 = self.l1s[core]
        hit_set = l1.lookup(addr)
        if hit_set is not None:
            hit_set.touch(hit_set.find(tag), is_prefetch=True)
            return MemOpResult(Level.L1, self._lat.prefetch_issue)
        source = Level.DRAM
        latency = self._lat.dram
        if self.llc.contains(addr):
            self.llc.invalidate(addr)
            source, latency = Level.LLC, self._lat.llc_hit
        elif self.directory.contains(addr):
            source, latency = Level.LLC, self._lat.llc_hit
        if not self.directory.contains(addr):
            self._allocate_directory(addr, now, is_prefetch=True)
        self._fill_l1(core, addr, now)
        return MemOpResult(source, latency)

    def clflush(self, addr: int, now: int = 0) -> MemOpResult:
        tag = line_address(addr)
        self.llc.invalidate(addr)
        self.directory.invalidate(addr)
        self._dir_back_invalidate(tag)
        return MemOpResult(Level.DRAM, self._lat.clflush)

    # -- introspection ---------------------------------------------------------

    def in_l1(self, core: int, addr: int) -> bool:
        return self.l1s[core].contains(addr)

    def in_directory(self, addr: int) -> bool:
        return self.directory.contains(addr)

    def in_llc(self, addr: int) -> bool:
        return self.llc.contains(addr)

    def directory_set_of(self, addr: int):
        return self.directory.set_for(addr)
