"""Non-inclusive LLC + coherence directory (paper Section VI-B).

Most Intel *server* parts use non-inclusive LLCs; there PREFETCHNTA brings
data "only to the L1 cache and the coherence directory, but not the LLC".
The paper leaves a directory version of NTP+NTP as future work, conditional
on the directory's replacement policy treating prefetched entries as
eviction candidates.  This package models that hypothetical so the condition
can be explored: the directory's insertion behaviour is configurable, and
:func:`run_directory_ntp_exchange` shows the channel working under the
vulnerable hypothesis and failing under a safe insertion policy.
"""

from .hierarchy import DirectoryHierarchy, DirectoryConfig
from .ntp import DirectoryExchangeResult, run_directory_ntp_exchange
from .amd_buffer import (
    AMDPrefetchBuffer,
    BufferExchangeResult,
    run_amd_buffer_exchange,
)

__all__ = [
    "DirectoryHierarchy",
    "DirectoryConfig",
    "DirectoryExchangeResult",
    "run_directory_ntp_exchange",
    "AMDPrefetchBuffer",
    "BufferExchangeResult",
    "run_amd_buffer_exchange",
]
