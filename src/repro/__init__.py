"""Leaky Way reproduction library.

A production-quality Python reproduction of *"Leaky Way: A Conflict-Based
Cache Covert Channel Bypassing Set Associativity"* (Guo, Xin, Zhang, Yang --
MICRO 2022): a simulated Intel cache hierarchy with the reverse-engineered
PREFETCHNTA behaviour, the NTP+NTP covert channel, the Prime+Prefetch+Scope
and Prefetch+Refresh side-channel attacks, prefetch-based eviction-set
construction, and the paper's proposed countermeasure.

Quick start::

    from repro import Machine
    from repro.attacks import run_ntp_ntp_channel

    machine = Machine.skylake(seed=7)
    result = run_ntp_ntp_channel(machine, message_bits=[1, 0, 1, 1])
    print(result.received_bits, result.bit_error_rate)
"""

from .config import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    CacheGeometry,
    KABY_LAKE,
    LatencyProfile,
    NoiseProfile,
    PLATFORMS,
    PlatformConfig,
    SKYLAKE,
    SyncProfile,
    kaby_lake,
    skylake,
)
from .errors import (
    AddressError,
    AttackError,
    CacheStateError,
    ChannelError,
    ConfigurationError,
    ReproError,
    SimulationError,
)
from .cache import (
    BitPLRU,
    CacheHierarchy,
    CacheLevel,
    CacheLine,
    CacheSet,
    Level,
    MemOpResult,
    QuadAgeLRU,
    SRRIP,
    TreePLRU,
    TrueLRU,
)
from .cpu import Core, TimedResult, TimingModel
from .mem import AddressSpace, CacheSetMapping, PageAllocator, SliceHash
from .sim import Machine, MachineCheckpoint, Scheduler, SimProcess

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CACHE_LINE_SIZE",
    "PAGE_SIZE",
    "CacheGeometry",
    "LatencyProfile",
    "NoiseProfile",
    "SyncProfile",
    "PlatformConfig",
    "SKYLAKE",
    "KABY_LAKE",
    "PLATFORMS",
    "skylake",
    "kaby_lake",
    "ReproError",
    "ConfigurationError",
    "AddressError",
    "CacheStateError",
    "SimulationError",
    "ChannelError",
    "AttackError",
    "CacheLine",
    "CacheSet",
    "CacheLevel",
    "CacheHierarchy",
    "Level",
    "MemOpResult",
    "QuadAgeLRU",
    "TrueLRU",
    "TreePLRU",
    "BitPLRU",
    "SRRIP",
    "Core",
    "TimingModel",
    "TimedResult",
    "AddressSpace",
    "PageAllocator",
    "CacheSetMapping",
    "SliceHash",
    "Machine",
    "MachineCheckpoint",
    "Scheduler",
    "SimProcess",
]
