"""Spec execution: the bridge from a :class:`JobSpec` to the experiment layer.

:func:`execute_job` calls the *same* experiment functions with the *same*
arguments the sweep CLI does — machine factory from the platform config,
store and runtime passed *explicitly* (never through the process-default
scopes, which are global and would cross-talk between concurrent jobs) —
so shard seeds, cache keys, warm-start digests, and store
``run_fingerprint``s are byte-identical to a direct ``python -m repro ...``
invocation of the same sweep.  This is the location-transparency contract:
the service adds scheduling around the computation, never inside it.

Progress flows out through a :class:`ForwardingTrace`, a plain
:class:`~repro.obs.EventTrace` that additionally hands every event to a
sink callable the moment it is emitted — the feed behind the server's SSE
streams and the subprocess worker's event messages.  Traces are purely
observational, so forwarding them cannot perturb results.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from ..errors import ServiceError
from ..obs import EventTrace, MetricsRegistry
from .spec import JobSpec


class ForwardingTrace(EventTrace):
    """An :class:`EventTrace` that also pushes each event to a sink.

    The sink receives the event's JSON dict (``{"name", "t", **fields}``)
    synchronously from the emitting thread; server code is responsible for
    hopping it onto the event loop.  Sink failures are swallowed — a slow
    or dead subscriber must never fail a sweep.
    """

    def __init__(self, sink: Optional[Callable[[Dict[str, Any]], None]] = None):
        super().__init__()
        self._sink = sink

    def emit(self, name: str, **fields: Any) -> None:
        super().emit(name, **fields)
        if self._sink is not None:
            try:
                self._sink(self.events[-1].as_dict())
            except Exception:
                pass


def _machine_factory(spec: JobSpec):
    """Mirror of the CLI's ``_machine_factory``: config + seed + engine."""
    from ..sim.machine import Machine

    config = spec.config()
    seed = spec.seed
    engine = spec.engine
    return lambda: Machine(config, seed=seed, backend=engine)


def _run_capacity(spec: JobSpec, cache, store, runtime, registry, trace) -> Dict[str, Any]:
    from ..experiments.capacity_sweep import run_capacity_sweep

    params = spec.params
    intervals = params.get("intervals")
    sweep = run_capacity_sweep(
        _machine_factory(spec),
        params.get("channel", "ntp+ntp"),
        intervals=tuple(intervals) if intervals is not None else None,
        n_bits=params.get("n_bits", 256),
        seed=spec.seed,
        jobs=spec.jobs,
        result_cache=cache,
        metrics=registry,
        trace=trace,
        faults=spec.fault_plan(),
        retries=spec.retries,
        warm_start=spec.warm_start,
        store=store,
        runtime=runtime,
    )
    peak = sweep.peak
    return {
        "platform": sweep.platform,
        "peak_interval": peak.interval,
        "peak_capacity_kb_per_s": peak.capacity_kb_per_s,
        "peak_bit_error_rate": peak.bit_error_rate,
    }


def _run_insertion(spec: JobSpec, cache, store, runtime, registry, trace) -> Dict[str, Any]:
    from ..experiments.insertion_sweep import run_insertion_sweep

    params = spec.params
    sweep = run_insertion_sweep(
        _machine_factory(spec),
        trials=params.get("trials", 32),
        seed=spec.seed,
        jobs=spec.jobs,
        result_cache=cache,
        metrics=registry,
        trace=trace,
        faults=spec.fault_plan(),
        retries=spec.retries,
        engine=spec.engine,
        batch_size=params.get("batch_size", 64),
        store=store,
        runtime=runtime,
    )
    return {
        "platform": sweep.platform,
        "engine": sweep.engine,
        "positions": len(sweep.evicted_fraction),
        "all_evicted": all(
            fraction == 1.0 for fraction in sweep.evicted_fraction.values()
        ),
    }


def _run_noise(spec: JobSpec, cache, store, runtime, registry, trace) -> Dict[str, Any]:
    from ..experiments.noise_sweep import run_noise_sweep

    result = run_noise_sweep(
        _machine_factory(spec),
        n_bits=spec.params.get("n_bits", 192),
        seed=spec.seed,
        jobs=spec.jobs,
        result_cache=cache,
        metrics=registry,
        trace=trace,
        faults=spec.fault_plan(),
        retries=spec.retries,
        warm_start=spec.warm_start,
        store=store,
        runtime=runtime,
    )
    return {"rows": len(result.rows())}


def _run_detection(spec: JobSpec, cache, store, runtime, registry, trace) -> Dict[str, Any]:
    from ..experiments.detection_sweep import run_detection_sweep

    result = run_detection_sweep(
        _machine_factory(spec),
        duration=spec.params.get("duration", 600_000),
        jobs=spec.jobs,
        result_cache=cache,
        metrics=registry,
        trace=trace,
        faults=spec.fault_plan(),
        retries=spec.retries,
        warm_start=spec.warm_start,
        store=store,
        runtime=runtime,
    )
    return {"rows": len(result.rows())}


def _run_sensitivity(spec: JobSpec, cache, store, runtime, registry, trace) -> Dict[str, Any]:
    from ..experiments.sensitivity import run_sensitivity_experiment

    result = run_sensitivity_experiment(
        spec.config(),
        n_bits=spec.params.get("n_bits", 128),
        seed=spec.seed,
        engine=spec.engine,
        jobs=spec.jobs,
        result_cache=cache,
        metrics=registry,
        trace=trace,
        faults=spec.fault_plan(),
        retries=spec.retries,
        warm_start=spec.warm_start,
        store=store,
        runtime=runtime,
    )
    lo, hi = result.advantage_range()
    return {"points": len(result.points), "advantage_range": [lo, hi]}


def _run_comparison(spec: JobSpec, cache, store, runtime, registry, trace) -> Dict[str, Any]:
    from ..experiments.channel_comparison import run_channel_comparison

    result = run_channel_comparison(
        _machine_factory(spec),
        n_bits=spec.params.get("n_bits", 128),
        seed=spec.seed,
        jobs=spec.jobs,
        result_cache=cache,
        metrics=registry,
        trace=trace,
        faults=spec.fault_plan(),
        retries=spec.retries,
        warm_start=spec.warm_start,
        engine=spec.engine,
        store=store,
        runtime=runtime,
    )
    return {"channels": len(result.profiles)}


def _run_search(spec: JobSpec, cache, store, runtime, registry, trace) -> Dict[str, Any]:
    from ..search import EvalContext, make_driver, make_objective

    params = spec.params
    objective = make_objective(
        params.get("objective", "toy-cliff"),
        config=spec.config(),
        engine=spec.engine,
    )
    driver = make_driver(
        params.get("strategy", "halving"), objective,
        budget=params.get("budget", 16),
    )
    outcome = driver.run(EvalContext(
        seed=spec.seed,
        jobs=spec.jobs,
        cache=cache,
        metrics=registry,
        trace=trace,
        faults=spec.fault_plan(),
        retries=spec.retries,
        store=store,
        runtime=runtime,
    ))
    return {
        "winner": dict(sorted(outcome.winner.items())),
        "winner_score": outcome.winner_score,
        "search_fingerprint": outcome.fingerprint,
        "evaluations": outcome.evaluations_used,
    }


_RUNNERS: Dict[str, Callable] = {
    "capacity": _run_capacity,
    "insertion": _run_insertion,
    "noise": _run_noise,
    "detection": _run_detection,
    "sensitivity": _run_sensitivity,
    "comparison": _run_comparison,
    "search": _run_search,
}


class _RecordingStore:
    """Store proxy that remembers the run ids recorded through it.

    Concurrent jobs share the store *file*, so "which runs did this job
    record" cannot be answered by scanning ids — another job's runs land
    interleaved.  Intercepting :meth:`record_run` attributes each run to
    the job whose sweep recorded it, exactly.
    """

    def __init__(self, store):
        self._store = store
        self.run_ids: list = []

    def record_run(self, *args, **kwargs):
        run_id = self._store.record_run(*args, **kwargs)
        self.run_ids.append(run_id)
        return run_id

    def __getattr__(self, name):
        return getattr(self._store, name)


def _run_summaries(store, run_ids) -> list:
    runs = []
    for run_id in sorted(run_ids):
        run = store.run(run_id)
        runs.append({
            "campaign": run.campaign,
            "run_id": run.id,
            "fingerprint": run.fingerprint,
            "shards_total": run.shards_total,
            "shards_computed": run.shards_computed,
            "shards_cached": run.shards_cached,
            "failures": run.failures,
        })
    return runs


def execute_job(
    spec: JobSpec,
    *,
    cache=None,
    store=None,
    runtime=None,
    sink: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Run one spec and return its JSON result summary.

    ``cache`` is the node's shared :class:`~repro.runner.ResultCache`,
    ``store`` its :class:`~repro.store.CampaignStore`, ``runtime`` an
    optional persistent :class:`~repro.runner.Runtime`.  All three are
    handed to the experiment layer explicitly — concurrent jobs must never
    reach through the process-default scopes, which are global state.
    ``store=None`` falls back to the usual default-store resolution, same
    as a bare CLI run.  Every job gets a fresh
    :class:`~repro.obs.MetricsRegistry` so summaries never mix jobs; trace
    events stream to ``sink`` as they happen.
    """
    runner = _RUNNERS.get(spec.experiment)
    if runner is None:
        raise ServiceError(f"unknown experiment {spec.experiment!r}")

    registry = MetricsRegistry()
    trace = ForwardingTrace(sink)
    started = time.time()
    recording = _RecordingStore(store) if store is not None else None

    detail = runner(spec, cache, recording, runtime, registry, trace)

    summary = {
        "experiment": spec.experiment,
        "spec_fingerprint": spec.fingerprint(),
        "elapsed_seconds": time.time() - started,
        "shards": {
            "total": registry.counter("runner.shards.total").value,
            "computed": registry.counter("runner.shards.computed").value,
            "cached": registry.counter("runner.shards.cached").value,
            "retries": registry.counter("runner.retries").value,
            "failures": registry.counter("runner.failures").value,
        },
        "detail": detail,
    }
    if recording is not None:
        summary["runs"] = _run_summaries(store, recording.run_ids)
    return summary
