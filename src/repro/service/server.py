"""The asyncio sweep service: HTTP front end + dispatcher.

Stdlib-only (``asyncio.start_server`` with a small HTTP/1.1 layer — no new
dependencies).  The service owns a persistent :class:`JobQueue` and one
execution :class:`Backend`; dispatcher tasks claim jobs in priority/FIFO
order and run them on the backend via ``asyncio.to_thread``, so the event
loop keeps serving requests while sweeps execute.

Routes::

    POST /jobs             submit a JSON job spec    → 202 {job}
                           queue full                → 429 + Retry-After
                           invalid spec              → 400 {error}
    GET  /jobs[?state=s]   list jobs, newest first
    GET  /jobs/{id}        one job's state/result
    GET  /jobs/{id}/events SSE progress stream (trace events + lifecycle)
    GET  /healthz          liveness + queue depth
    GET  /metrics          the service node's metrics registry

Service metrics (see docs/observability.md): ``service.jobs.submitted`` /
``.completed`` / ``.failed`` / ``.rejected`` counters, a
``service.queue.depth`` gauge, and a ``service.job.seconds`` histogram.

Restart safety: on startup the service calls :meth:`JobQueue.recover`,
flipping jobs orphaned in ``running`` back to ``pending`` — a killed
service resumes its backlog when relaunched on the same queue file.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import QueueFullError, ServiceError
from ..obs import MetricsRegistry
from .backends import Backend
from .queue import Job, JobQueue
from .spec import JobSpec

#: Events kept per job for SSE replay; older events are dropped oldest-first.
MAX_BUFFERED_EVENTS = 4096


class _JobFeed:
    """One job's live event buffer, shared by dispatcher and SSE readers."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        self.finished = False
        self.changed = asyncio.Event()

    def push(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        if len(self.events) > MAX_BUFFERED_EVENTS:
            del self.events[0]
            self.dropped += 1
        self.changed.set()

    def finish(self) -> None:
        self.finished = True
        self.changed.set()


class SweepService:
    """Queue + backend + HTTP front end, wired onto one event loop."""

    def __init__(
        self,
        queue: JobQueue,
        backend: Backend,
        workers: int = 1,
        registry: Optional[MetricsRegistry] = None,
    ):
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.queue = queue
        self.backend = backend
        self.workers = workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._feeds: Dict[int, _JobFeed] = {}
        self._wake = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatchers: List[asyncio.Task] = []
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener, recover orphaned jobs, start dispatchers."""
        recovered = self.queue.recover()
        if recovered:
            self.registry.counter("service.jobs.recovered").inc(recovered)
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._update_depth()
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(i))
            for i in range(self.workers)
        ]
        self._wake.set()

    async def stop(self) -> None:
        self._stopping = True
        self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        await asyncio.to_thread(self.backend.close)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- dispatch ----------------------------------------------------------

    def _update_depth(self) -> None:
        self.registry.gauge("service.queue.depth").set(self.queue.depth())

    async def _dispatch_loop(self, index: int) -> None:
        while not self._stopping:
            job = await asyncio.to_thread(self.queue.claim)
            if job is None:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=1.0)
                except asyncio.TimeoutError:
                    pass  # re-poll: the queue file may be shared externally
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        feed = self._feeds.setdefault(job.id, _JobFeed())
        feed.push({
            "name": "service.job.started",
            "t": time.time(),
            "job": job.id,
            "attempt": job.attempts,
        })
        self._update_depth()

        def sink(event: Dict[str, Any]) -> None:
            # Called from the backend's worker thread (or pipe reader).
            loop.call_soon_threadsafe(feed.push, event)

        started = time.monotonic()
        try:
            result = await asyncio.to_thread(self.backend.run_job, job.spec, sink)
        except Exception as error:
            message = f"{type(error).__name__}: {error}"
            await asyncio.to_thread(self.queue.fail, job.id, message)
            self.registry.counter("service.jobs.failed").inc()
            feed.push({
                "name": "service.job.failed",
                "t": time.time(),
                "job": job.id,
                "error": message,
            })
        else:
            await asyncio.to_thread(self.queue.finish, job.id, result)
            self.registry.counter("service.jobs.completed").inc()
            feed.push({
                "name": "service.job.done",
                "t": time.time(),
                "job": job.id,
                "result": result,
            })
        finally:
            self.registry.histogram("service.job.seconds").observe(
                time.monotonic() - started
            )
            feed.finish()
            self._update_depth()

    # -- HTTP --------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, body = request
            await self._route(method, target, body, writer)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)

        if method == "POST" and path == "/jobs":
            await self._post_job(body, writer)
        elif method == "GET" and path == "/jobs":
            state = query.get("state", [None])[0]
            try:
                jobs = await asyncio.to_thread(self.queue.jobs, state)
            except ServiceError as error:
                await self._send_json(writer, 400, {"error": str(error)})
                return
            await self._send_json(
                writer, 200, {"jobs": [job.to_dict() for job in jobs]}
            )
        elif method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, {
                "ok": True,
                "backend": self.backend.name,
                "workers": self.workers,
                "depth": await asyncio.to_thread(self.queue.depth),
            })
        elif method == "GET" and path == "/metrics":
            await self._send_json(writer, 200, self.registry.as_dict())
        elif method == "GET" and path.startswith("/jobs/"):
            tail = path[len("/jobs/"):]
            if tail.endswith("/events"):
                await self._stream_events(tail[: -len("/events")].rstrip("/"), writer)
            else:
                await self._get_job(tail, writer)
        else:
            await self._send_json(
                writer, 404, {"error": f"no route for {method} {path}"}
            )

    async def _post_job(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            spec = JobSpec.from_json(body.decode("utf-8"))
        except (ServiceError, UnicodeDecodeError) as error:
            self.registry.counter("service.jobs.rejected").inc()
            await self._send_json(writer, 400, {"error": str(error)})
            return
        try:
            job = await asyncio.to_thread(self.queue.submit, spec)
        except QueueFullError as error:
            self.registry.counter("service.jobs.rejected").inc()
            await self._send_json(
                writer, 429, {"error": str(error)},
                extra_headers={"Retry-After": f"{error.retry_after:g}"},
            )
            return
        self.registry.counter("service.jobs.submitted").inc()
        self._update_depth()
        self._feeds.setdefault(job.id, _JobFeed())
        self._wake.set()
        await self._send_json(writer, 202, {"job": job.to_dict()})

    async def _get_job(self, tail: str, writer: asyncio.StreamWriter) -> None:
        job_id = self._parse_id(tail)
        if job_id is None:
            await self._send_json(writer, 400, {"error": f"bad job id {tail!r}"})
            return
        job = await asyncio.to_thread(self.queue.job, job_id)
        if job is None:
            await self._send_json(writer, 404, {"error": f"no job {job_id}"})
            return
        await self._send_json(writer, 200, {"job": job.to_dict()})

    async def _stream_events(self, tail: str, writer: asyncio.StreamWriter) -> None:
        job_id = self._parse_id(tail)
        if job_id is None:
            await self._send_json(writer, 400, {"error": f"bad job id {tail!r}"})
            return
        job = await asyncio.to_thread(self.queue.job, job_id)
        if job is None:
            await self._send_json(writer, 404, {"error": f"no job {job_id}"})
            return
        feed = self._feeds.get(job_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()

        if feed is None:
            # Job predates this process (restarted service): emit what the
            # queue knows, then end the stream.
            payload = json.dumps(job.to_dict(), sort_keys=True)
            writer.write(f"event: job\ndata: {payload}\n\n".encode("utf-8"))
            await writer.drain()
            return

        sent = 0
        while True:
            while sent < len(feed.events) + feed.dropped:
                index = sent - feed.dropped
                if index < 0:  # buffer overflowed past this reader
                    sent = feed.dropped
                    continue
                event = feed.events[index]
                payload = json.dumps(event, sort_keys=True)
                name = event.get("name", "event")
                writer.write(
                    f"event: {name}\ndata: {payload}\n\n".encode("utf-8")
                )
                sent += 1
            await writer.drain()
            if feed.finished and sent >= len(feed.events) + feed.dropped:
                return
            feed.changed.clear()
            try:
                await asyncio.wait_for(feed.changed.wait(), timeout=15.0)
            except asyncio.TimeoutError:
                writer.write(b": keep-alive\n\n")
                await writer.drain()

    @staticmethod
    def _parse_id(text: str) -> Optional[int]:
        try:
            return int(text)
        except ValueError:
            return None

    _STATUS = {
        200: "OK",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        429: "Too Many Requests",
        500: "Internal Server Error",
    }

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {self._STATUS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


async def run_service(
    queue: JobQueue,
    backend: Backend,
    host: str = "127.0.0.1",
    port: int = 8766,
    workers: int = 1,
    registry: Optional[MetricsRegistry] = None,
    ready: Optional[Any] = None,
) -> None:
    """Start a service and serve until cancelled (the ``repro serve`` body)."""
    service = SweepService(queue, backend, workers=workers, registry=registry)
    await service.start(host, port)
    if ready is not None:
        ready(service)
    try:
        await service.serve_forever()
    finally:
        await service.stop()


class ServiceThread:
    """A service on a background thread — tests, benchmarks, embedding.

    Binds an ephemeral port by default; ``host``/``port`` report the bound
    address once the constructor returns.  ``stop()`` shuts the loop down
    and joins the thread.
    """

    def __init__(
        self,
        queue: JobQueue,
        backend: Backend,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.service: Optional[SweepService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            args=(queue, backend, host, port, workers, registry),
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("service thread failed to start within 30s")

    def _run(self, queue, backend, host, port, workers, registry) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            service = SweepService(
                queue, backend, workers=workers, registry=registry
            )
            await service.start(host, port)
            self.service = service
            self._started.set()
            try:
                await service.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await service.stop()

        try:
            asyncio.run(body())
        finally:
            self._started.set()  # unblock the constructor on startup failure

    @property
    def host(self) -> str:
        assert self.service is not None
        return self.service.host

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            def _cancel():
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()

            self._loop.call_soon_threadsafe(_cancel)
        self._thread.join(timeout=30)
