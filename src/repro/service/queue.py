"""Persistent sqlite-backed priority job queue.

Follows the :mod:`repro.store` conventions — ``PRAGMA user_version`` schema
guard, canonical JSON payloads, content fingerprints — so a queue file is
as inspectable and as durable as a campaign store.  Scheduling is
deterministic: :meth:`JobQueue.claim` always returns the highest-priority
pending job, FIFO within a priority (ties broken by submission order,
which is the autoincrement rowid).

Backpressure is bounded: :meth:`JobQueue.submit` raises
:class:`~repro.errors.QueueFullError` once ``max_depth`` jobs are pending,
carrying the ``retry_after`` hint the HTTP front end surfaces as a 429.

Restart safety: jobs claimed by a dispatcher that died stay in state
``running`` in the file; :meth:`JobQueue.recover` flips them back to
``pending`` (attempts preserved) when the service reopens the queue.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import QueueFullError, ServiceError
from ..runner.shard import canonical_json
from .spec import JobSpec

#: Bumped on any incompatible change to the queue schema.
QUEUE_SCHEMA_VERSION = 1

#: Default ceiling on pending jobs before submissions are rejected.
DEFAULT_MAX_DEPTH = 64

#: How long writers wait on a locked database before giving up (ms).
BUSY_TIMEOUT_MS = 5_000

#: Job lifecycle states, in the order they normally occur.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint  TEXT    NOT NULL,
    priority     INTEGER NOT NULL,
    state        TEXT    NOT NULL,
    spec_json    TEXT    NOT NULL,
    submitted_at REAL    NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    result_json  TEXT,
    error        TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, id ASC);
"""


@dataclass(frozen=True)
class Job:
    """One queue row: a spec plus its scheduling lifecycle."""

    id: int
    fingerprint: str
    priority: int
    state: str
    spec: JobSpec
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    attempts: int
    result: Optional[Dict[str, Any]]
    error: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "priority": self.priority,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "result": self.result,
            "error": self.error,
        }


class JobQueue:
    """A persistent priority queue of :class:`~repro.service.spec.JobSpec`.

    ``path`` may be ``":memory:"`` (tests, throwaway services) or a file
    path; file-backed queues get WAL journaling and a busy timeout so a
    dispatcher and an inspector can share the file.  The connection is
    shared across threads behind one lock — the asyncio server touches the
    queue from its event loop thread and from ``to_thread`` workers.
    """

    def __init__(self, path: str = ":memory:", max_depth: int = DEFAULT_MAX_DEPTH):
        if max_depth < 1:
            raise ServiceError(f"max_depth must be >= 1, got {max_depth}")
        self.path = str(path)
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        if self.path != ":memory:":
            self._conn.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
            self._conn.execute("PRAGMA journal_mode = WAL")
        self._check_schema()
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version = {QUEUE_SCHEMA_VERSION}")

    def _check_schema(self) -> None:
        (version,) = self._conn.execute("PRAGMA user_version").fetchone()
        if version not in (0, QUEUE_SCHEMA_VERSION):
            raise ServiceError(
                f"job queue {self.path!r} has schema version {version}, "
                f"this build understands {QUEUE_SCHEMA_VERSION}"
            )

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue ``spec``; raises :class:`QueueFullError` at capacity."""
        now = time.time()
        with self._lock, self._conn:
            (pending,) = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state IN ('pending', 'running')"
            ).fetchone()
            if pending >= self.max_depth:
                raise QueueFullError(
                    f"queue has {pending} unfinished job(s), "
                    f"max_depth is {self.max_depth}",
                    retry_after=1.0,
                )
            cursor = self._conn.execute(
                "INSERT INTO jobs "
                "(fingerprint, priority, state, spec_json, submitted_at) "
                "VALUES (?, ?, 'pending', ?, ?)",
                (
                    spec.fingerprint(),
                    spec.priority,
                    canonical_json(spec.to_dict()),
                    now,
                ),
            )
            job_id = cursor.lastrowid
        job = self.job(job_id)
        assert job is not None
        return job

    # -- scheduling --------------------------------------------------------

    def claim(self) -> Optional[Job]:
        """Atomically move the next pending job to ``running`` and return it.

        "Next" is the highest priority, then oldest submission — the
        deterministic order the queue's property tests pin down.  Returns
        None when nothing is pending.
        """
        now = time.time()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'pending' "
                "ORDER BY priority DESC, id ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?, "
                "attempts = attempts + 1 WHERE id = ?",
                (now, row["id"]),
            )
            job_id = row["id"]
        return self.job(job_id)

    def finish(self, job_id: int, result: Dict[str, Any]) -> None:
        """Mark a running job ``done`` with its result summary."""
        self._settle(job_id, "done", result_json=canonical_json(result))

    def fail(self, job_id: int, error: str) -> None:
        """Mark a running job ``failed`` with the error message."""
        self._settle(job_id, "failed", error=error)

    def cancel(self, job_id: int) -> bool:
        """Cancel a pending job; returns False if it already left the queue."""
        now = time.time()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'cancelled', finished_at = ? "
                "WHERE id = ? AND state = 'pending'",
                (now, job_id),
            )
            return cursor.rowcount == 1

    def _settle(
        self,
        job_id: int,
        state: str,
        result_json: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        now = time.time()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, "
                "result_json = ?, error = ? WHERE id = ? AND state = 'running'",
                (state, now, result_json, error, job_id),
            )
            if cursor.rowcount != 1:
                raise ServiceError(
                    f"job {job_id} is not running; cannot mark it {state}"
                )

    def recover(self) -> int:
        """Flip orphaned ``running`` jobs back to ``pending`` after a restart.

        Returns the number of jobs recovered.  Attempts are preserved so a
        job that crashes the service repeatedly remains visible as such.
        """
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'pending', started_at = NULL "
                "WHERE state = 'running'"
            )
            return cursor.rowcount

    # -- inspection --------------------------------------------------------

    def depth(self) -> int:
        """Unfinished (pending + running) job count — the backpressure gauge."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state IN ('pending', 'running')"
            ).fetchone()
        return count

    def job(self, job_id: int) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._to_job(row) if row is not None else None

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        """All jobs, newest first; optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r} (choose from {', '.join(JOB_STATES)})"
            )
        with self._lock:
            if state is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY id DESC"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE state = ? ORDER BY id DESC",
                    (state,),
                ).fetchall()
        return [self._to_job(row) for row in rows]

    @staticmethod
    def _to_job(row: sqlite3.Row) -> Job:
        import json

        return Job(
            id=row["id"],
            fingerprint=row["fingerprint"],
            priority=row["priority"],
            state=row["state"],
            spec=JobSpec.from_json(row["spec_json"]),
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            result=json.loads(row["result_json"]) if row["result_json"] else None,
            error=row["error"],
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
