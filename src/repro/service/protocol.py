"""Length-prefixed JSON messaging over byte pipes.

The :class:`~repro.service.backends.SubprocessBackend` and its worker
process speak this protocol over stdin/stdout: every message is a 4-byte
big-endian length followed by that many bytes of UTF-8 JSON.  The framing
is the template for future remote hosts (an SSH channel is just another
byte pipe), which is why it lives apart from the subprocess plumbing.

Messages are *standard* JSON (``allow_nan=False``), mirroring the result
cache and campaign store: a NaN that slipped through the pipe would parse
on this side but poison any strict consumer downstream.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO, Dict, Optional

from ..errors import ServiceError

#: Frame header: one unsigned 32-bit big-endian byte length.
_HEADER = struct.Struct(">I")

#: Ceiling on one message's byte length.  A real message is a job spec or
#: a result summary — kilobytes.  A corrupt or misaligned header would
#: otherwise be read as a multi-gigabyte allocation.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


def write_message(stream: BinaryIO, message: Dict[str, Any]) -> None:
    """Frame and write one JSON message; flushes so the peer can block-read."""
    try:
        payload = json.dumps(
            message, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ServiceError(f"message is not JSON-serializable: {error}") from error
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def _read_exact(stream: BinaryIO, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes, None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None  # clean EOF between messages
            raise ServiceError(
                f"pipe closed mid-message ({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one framed message; None on clean EOF (the peer closed the pipe)."""
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ServiceError(
            f"message length {length} exceeds the {MAX_MESSAGE_BYTES}-byte cap "
            "(corrupt or misaligned frame header)"
        )
    payload = _read_exact(stream, length)
    if payload is None:
        raise ServiceError("pipe closed between a frame header and its payload")
    try:
        message = json.loads(payload)
    except ValueError as error:
        raise ServiceError(f"message payload is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ServiceError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message
