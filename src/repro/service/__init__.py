"""The sweep service: queue, backends, HTTP front end, client.

Promotes :mod:`repro.runner` from a single-process CLI into a job service
with location-transparent shard execution — identical requests dedupe
fleet-wide through the content-addressed result cache, and a sweep
submitted to the service produces store rows and fingerprints identical
to the same sweep run directly (see docs/service.md).

=====================  =================================================
Module                 Responsibility
=====================  =================================================
:mod:`.spec`           :class:`JobSpec` — the validated JSON surface
:mod:`.queue`          :class:`JobQueue` — persistent sqlite priority queue
:mod:`.exec`           :func:`execute_job` — spec → experiment call
:mod:`.backends`       :class:`LocalBackend` / :class:`SubprocessBackend`
:mod:`.protocol`       length-prefixed JSON pipe framing
:mod:`.worker`         the subprocess worker main loop
:mod:`.server`         :class:`SweepService` — asyncio HTTP + dispatcher
:mod:`.client`         :class:`ServiceClient` — blocking HTTP client
=====================  =================================================
"""

from .backends import BACKENDS, Backend, LocalBackend, SubprocessBackend, make_backend
from .client import ServiceClient
from .exec import ForwardingTrace, execute_job
from .queue import DEFAULT_MAX_DEPTH, Job, JobQueue, QUEUE_SCHEMA_VERSION
from .server import ServiceThread, SweepService, run_service
from .spec import EXPERIMENT_PARAMS, PLATFORMS, JobSpec, register_platform

__all__ = [
    "BACKENDS",
    "Backend",
    "DEFAULT_MAX_DEPTH",
    "EXPERIMENT_PARAMS",
    "ForwardingTrace",
    "Job",
    "JobQueue",
    "JobSpec",
    "LocalBackend",
    "PLATFORMS",
    "QUEUE_SCHEMA_VERSION",
    "ServiceClient",
    "ServiceThread",
    "SubprocessBackend",
    "SweepService",
    "execute_job",
    "make_backend",
    "register_platform",
    "run_service",
]
