"""Job specs: the JSON surface of the sweep service.

A :class:`JobSpec` is everything a client may ask the service to run — an
experiment name, its parameters, and the runner surface the CLI already
exposes (jobs, engine, warm start, fault plan, retries).  Specs are
validated eagerly at construction, round-trip through JSON, and carry a
content :meth:`~JobSpec.fingerprint` (priority excluded — scheduling must
never change what a job computes) so duplicate submissions are recognizable
fleet-wide.

Determinism note: a spec deliberately contains *only* values that feed the
experiment functions the CLI calls.  Executing a spec (see
:mod:`repro.service.exec`) therefore produces shard seeds, cache keys,
warm-start digests, and store fingerprints byte-identical to the same
sweep run via ``python -m repro ...`` directly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..config import KABY_LAKE, SKYLAKE, PlatformConfig
from ..errors import ServiceError
from ..faults import FaultPlan
from ..runner.shard import canonical_json

#: Platform names a spec may reference (mirrors the CLI's ``--platform``).
#: Tests may register extra configs (e.g. a tiny geometry) via
#: :func:`register_platform`.
PLATFORMS: Dict[str, PlatformConfig] = {
    "skylake": SKYLAKE,
    "kaby-lake": KABY_LAKE,
}

#: Experiment name -> parameter keys a spec's ``params`` may carry.  The
#: execution functions live in :mod:`repro.service.exec`; this table is
#: what submission-time validation checks against, so a typo'd parameter
#: is a 400 at the front door, not a TypeError in a worker.
EXPERIMENT_PARAMS: Dict[str, frozenset] = {
    "capacity": frozenset({"channel", "intervals", "n_bits"}),
    "insertion": frozenset({"trials", "batch_size"}),
    "noise": frozenset({"n_bits"}),
    "detection": frozenset({"duration"}),
    "sensitivity": frozenset({"n_bits"}),
    "comparison": frozenset({"n_bits"}),
    "search": frozenset({"objective", "strategy", "budget"}),
}


def register_platform(name: str, config: PlatformConfig) -> None:
    """Make ``config`` addressable from specs as ``platform=name`` (tests)."""
    PLATFORMS[name] = config


@dataclass(frozen=True)
class JobSpec:
    """One validated sweep/search request.

    ``params`` carries the experiment-specific knobs (see
    :data:`EXPERIMENT_PARAMS`); everything else mirrors the sweep CLI's
    runner flags.  ``priority`` orders the job in the queue (higher runs
    first, FIFO within a priority) and is excluded from the fingerprint.
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    platform: str = "skylake"
    engine: Optional[str] = None
    seed: int = 0
    jobs: int = 1
    priority: int = 0
    warm_start: bool = True
    faults: Optional[Dict[str, Any]] = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENT_PARAMS:
            raise ServiceError(
                f"unknown experiment {self.experiment!r} "
                f"(choose from {', '.join(sorted(EXPERIMENT_PARAMS))})"
            )
        if self.platform not in PLATFORMS:
            raise ServiceError(
                f"unknown platform {self.platform!r} "
                f"(choose from {', '.join(sorted(PLATFORMS))})"
            )
        if not isinstance(self.params, dict):
            raise ServiceError(
                f"params must be a JSON object, got {type(self.params).__name__}"
            )
        unknown = sorted(set(self.params) - EXPERIMENT_PARAMS[self.experiment])
        if unknown:
            raise ServiceError(
                f"unknown {self.experiment} param(s): {', '.join(unknown)} "
                f"(allowed: {', '.join(sorted(EXPERIMENT_PARAMS[self.experiment]))})"
            )
        if self.jobs < 0:
            raise ServiceError(f"jobs must be >= 0, got {self.jobs}")
        if self.retries < 0:
            raise ServiceError(f"retries must be >= 0, got {self.retries}")
        if self.engine is not None:
            from ..engine import resolve_backend

            resolve_backend(self.engine)  # raises on unknown names
        if self.faults is not None:
            FaultPlan.from_dict(self.faults)  # raises on malformed plans

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over the spec's computation-relevant content.

        Priority is excluded: two submissions that differ only in urgency
        are the *same work* and must dedupe against the same cache keys.
        """
        material = {
            key: value
            for key, value in self.to_dict().items()
            if key != "priority"
        }
        return hashlib.sha256(
            canonical_json(material).encode("utf-8")
        ).hexdigest()

    def fault_plan(self) -> Optional[FaultPlan]:
        """The spec's :class:`~repro.faults.FaultPlan`, or None."""
        return FaultPlan.from_dict(self.faults) if self.faults is not None else None

    def config(self) -> PlatformConfig:
        """The resolved platform configuration."""
        return PLATFORMS[self.platform]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        if not isinstance(data, dict):
            raise ServiceError(
                f"job spec must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ServiceError(
                f"unknown job spec field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        if "experiment" not in data:
            raise ServiceError("job spec is missing the 'experiment' field")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ServiceError(f"job spec is not valid JSON: {error}") from error
        return cls.from_dict(data)
