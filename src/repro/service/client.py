"""Blocking HTTP client for the sweep service (stdlib ``http.client``).

Backs ``repro submit`` / ``repro jobs`` and is the scripting surface for
tests and benchmarks::

    client = ServiceClient(host, port)
    job = client.submit(JobSpec(experiment="capacity", params={"n_bits": 64}))
    done = client.wait(job["id"])
    for event in client.watch(job["id"]):
        ...

:meth:`ServiceClient.submit` surfaces the server's backpressure verbatim:
a 429 response raises :class:`~repro.errors.QueueFullError` carrying the
``Retry-After`` value, so callers can implement honest retry loops.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from ..errors import QueueFullError, ServiceError
from .spec import JobSpec


class ServiceClient:
    """One service endpoint; connections are per-request (the server
    closes after every response)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8766,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw) if raw else {}
            except ValueError:
                data = {"error": raw.decode("utf-8", "replace")}
            if response.status == 429:
                try:
                    retry_after = float(response.getheader("Retry-After", "1"))
                except ValueError:
                    retry_after = 1.0
                raise QueueFullError(
                    data.get("error", "queue is full"), retry_after=retry_after
                )
            if response.status >= 400:
                detail = data.get("error", repr(raw[:200]))
                raise ServiceError(
                    f"{method} {path} -> {response.status}: {detail}"
                )
            return data
        except (ConnectionError, OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {error}"
            ) from error
        finally:
            conn.close()

    # -- API ---------------------------------------------------------------

    def submit(self, spec: Union[JobSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """Enqueue a spec; returns the created job dict (202 body)."""
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        else:
            JobSpec.from_dict(spec)  # client-side validation, same errors
        return self._request("POST", "/jobs", body=spec)["job"]

    def job(self, job_id: int) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        path = f"/jobs?state={state}" if state else "/jobs"
        return self._request("GET", path)["jobs"]

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def wait(
        self,
        job_id: int,
        timeout: float = 600.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job settles; returns the final job dict.

        Raises :class:`ServiceError` if the job ends ``failed``/``cancelled``
        or the timeout elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if job["state"] in ("failed", "cancelled"):
                raise ServiceError(
                    f"job {job_id} {job['state']}: {job.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def watch(self, job_id: int) -> Iterator[Dict[str, Any]]:
        """Yield the job's SSE events as dicts until the stream ends.

        Terminal lifecycle events (``service.job.done`` / ``.failed``) are
        yielded like any other; the generator then returns.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=None)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", raw)
                except ValueError:
                    message = raw
                raise ServiceError(f"watch {job_id} -> {response.status}: {message}")
            data_lines: List[str] = []
            while True:
                raw_line = response.fp.readline()
                if not raw_line:
                    return  # server closed the stream
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].lstrip())
                elif line == "" and data_lines:
                    try:
                        yield json.loads("\n".join(data_lines))
                    except ValueError:
                        pass  # tolerate malformed frames, keep streaming
                    data_lines = []
        except (ConnectionError, OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {error}"
            ) from error
        finally:
            conn.close()
