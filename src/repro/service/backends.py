"""Pluggable execution backends behind one interface.

A :class:`Backend` runs one validated :class:`~repro.service.spec.JobSpec`
to completion and returns its JSON result summary, streaming trace events
to a sink callback along the way.  Two implementations ship:

* :class:`LocalBackend` — in-process, wrapping the existing runner stack
  (:class:`~repro.runner.Runtime` + ``run_shards``/``run_warm_shards``/
  ``run_batch_shards``) via :func:`~repro.service.exec.execute_job`.
* :class:`SubprocessBackend` — a persistent worker process driven over the
  length-prefixed JSON pipe protocol (:mod:`repro.service.protocol`).  The
  pipe is the whole coupling, which makes this the template for remote
  hosts: an SSH channel to ``python -m repro.service.worker`` on another
  machine would reuse every message unchanged.

Location transparency is the contract either way: a backend receives the
spec plus the node's cache/store *paths* and must produce results — cache
keys, checkpoint digests, store fingerprints, retry ``(index, attempt)``
decisions — byte-identical to :func:`execute_job` run directly.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from typing import Any, Callable, Dict, Optional

from ..errors import ServiceError
from . import protocol
from .spec import JobSpec

Sink = Callable[[Dict[str, Any]], None]


class Backend:
    """Interface every execution backend implements."""

    name = "abstract"

    def run_job(self, spec: JobSpec, sink: Optional[Sink] = None) -> Dict[str, Any]:
        """Run ``spec`` to completion; returns the JSON result summary.

        ``sink`` receives each trace event dict as the sweep emits it.
        Raises :class:`ServiceError` (or the experiment's own error) on
        failure — the dispatcher records it and marks the job failed.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release workers, pools, and pipes.  Idempotent."""


class LocalBackend(Backend):
    """In-process execution on the service node's own runner stack.

    Owns one persistent :class:`~repro.runner.Runtime` shared by every job
    it runs (the service-side analogue of the CLI's default
    ``--runtime persistent`` scope), plus the node's shared result cache
    and campaign store.
    """

    name = "local"

    def __init__(
        self,
        cache_root: Optional[str] = None,
        store_path: Optional[str] = None,
    ):
        from ..runner import Runtime

        self.cache_root = cache_root
        self.store_path = store_path
        self._runtime = Runtime(name="service")
        self._closed = False

    def run_job(self, spec: JobSpec, sink: Optional[Sink] = None) -> Dict[str, Any]:
        from ..runner import ResultCache
        from .exec import execute_job

        if self._closed:
            raise ServiceError("backend is closed")
        # Fresh cache/store handles per job: sqlite connections are
        # thread-bound and cache hit counters are per-run deltas, so
        # concurrent dispatcher slots must not share either object.  The
        # *paths* are shared — that is what makes the dedupe fleet-wide.
        cache = ResultCache(self.cache_root) if self.cache_root else None
        store = None
        try:
            if self.store_path:
                from ..store import CampaignStore

                store = CampaignStore(self.store_path)
            return execute_job(
                spec, cache=cache, store=store, runtime=self._runtime, sink=sink,
            )
        finally:
            if store is not None:
                store.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._runtime.close()


class SubprocessBackend(Backend):
    """One persistent worker process spoken to over stdin/stdout frames.

    The worker (``python -m repro.service.worker``) receives ``job``
    messages carrying the spec plus the cache/store paths, and answers
    with a stream of ``event`` messages followed by one ``result`` or
    ``error``.  A worker that dies mid-job fails that job and is
    respawned for the next one — the queue's retry accounting, not the
    backend, decides whether the job runs again.
    """

    name = "subprocess"

    def __init__(
        self,
        cache_root: Optional[str] = None,
        store_path: Optional[str] = None,
    ):
        self.cache_root = cache_root
        self.store_path = store_path
        self._proc: Optional[subprocess.Popen] = None
        self._lock = threading.Lock()
        self._closed = False

    def _ensure_worker(self) -> subprocess.Popen:
        if self._proc is not None and self._proc.poll() is None:
            return self._proc
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            # stderr inherits: worker tracebacks land in the service log.
        )
        return self._proc

    def run_job(self, spec: JobSpec, sink: Optional[Sink] = None) -> Dict[str, Any]:
        with self._lock:
            if self._closed:
                raise ServiceError("backend is closed")
            proc = self._ensure_worker()
            try:
                protocol.write_message(proc.stdin, {
                    "kind": "job",
                    "spec": spec.to_dict(),
                    "cache_root": self.cache_root,
                    "store_path": self.store_path,
                })
                while True:
                    message = protocol.read_message(proc.stdout)
                    if message is None:
                        raise ServiceError(
                            "worker process exited before returning a result"
                        )
                    kind = message.get("kind")
                    if kind == "event":
                        if sink is not None:
                            try:
                                sink(message["event"])
                            except Exception:
                                pass
                    elif kind in ("result", "error"):
                        break
                    else:
                        raise ServiceError(
                            f"unexpected worker message kind {kind!r}"
                        )
            except ServiceError:
                # A protocol breakdown poisons the pipe framing; retire
                # the worker so the next job gets a clean one.
                self._retire_worker()
                raise
        if kind == "error":
            # A failed *job* over clean framing: the worker survives it
            # and stays up for the next job.
            raise ServiceError(
                f"worker failed: {message.get('error', 'unknown error')}"
            )
        return message["result"]

    def _retire_worker(self) -> None:
        if self._proc is None:
            return
        proc, self._proc = self._proc, None
        try:
            proc.stdin.close()
        except Exception:
            pass
        try:
            proc.wait(timeout=5)
        except Exception:
            proc.kill()
            proc.wait()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._proc is not None and self._proc.poll() is None:
                try:
                    protocol.write_message(self._proc.stdin, {"kind": "shutdown"})
                except Exception:
                    pass
            self._retire_worker()


#: CLI ``--backend`` choices.
BACKENDS = ("local", "subprocess")


def make_backend(
    name: str,
    cache_root: Optional[str] = None,
    store_path: Optional[str] = None,
) -> Backend:
    """Build a backend by CLI name."""
    if name == "local":
        return LocalBackend(cache_root=cache_root, store_path=store_path)
    if name == "subprocess":
        return SubprocessBackend(cache_root=cache_root, store_path=store_path)
    raise ServiceError(
        f"unknown backend {name!r} (choose from {', '.join(BACKENDS)})"
    )
