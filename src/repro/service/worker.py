"""Subprocess worker: the far end of the pipe protocol.

``python -m repro.service.worker`` reads framed messages from stdin and
answers on stdout (see :mod:`repro.service.protocol`):

* ``{"kind": "job", "spec": {...}, "cache_root": ..., "store_path": ...}``
  → a stream of ``{"kind": "event", "event": {...}}`` trace messages,
  then one ``{"kind": "result", "result": {...}}`` or
  ``{"kind": "error", "error": "..."}``.
* ``{"kind": "shutdown"}`` or EOF → clean exit.

The worker keeps one persistent :class:`~repro.runner.Runtime` across
jobs, mirroring :class:`~repro.service.backends.LocalBackend`, so
back-to-back jobs don't respawn worker pools.  Everything the experiments
might print is re-routed to stderr — stdout carries frames only.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional

from . import protocol


def _serve(stdin, stdout) -> int:
    from ..runner import ResultCache, Runtime
    from .exec import execute_job
    from .spec import JobSpec

    cache: Optional[ResultCache] = None
    cache_root: Optional[str] = None
    store = None
    store_path: Optional[str] = None

    with Runtime(name="service-worker") as runtime:
        while True:
            message = protocol.read_message(stdin)
            if message is None or message.get("kind") == "shutdown":
                break
            if message.get("kind") != "job":
                protocol.write_message(stdout, {
                    "kind": "error",
                    "error": f"unexpected message kind {message.get('kind')!r}",
                })
                continue
            try:
                spec = JobSpec.from_dict(message["spec"])
                if message.get("cache_root") != cache_root:
                    cache_root = message.get("cache_root")
                    cache = ResultCache(cache_root) if cache_root else None
                if message.get("store_path") != store_path:
                    if store is not None:
                        store.close()
                        store = None
                    store_path = message.get("store_path")
                    if store_path:
                        from ..store import CampaignStore

                        store = CampaignStore(store_path)

                def sink(event: Dict[str, Any]) -> None:
                    protocol.write_message(stdout, {
                        "kind": "event", "event": event,
                    })

                result = execute_job(
                    spec, cache=cache, store=store, runtime=runtime, sink=sink,
                )
                protocol.write_message(stdout, {
                    "kind": "result", "result": result,
                })
            except Exception as error:  # report, stay alive for the next job
                protocol.write_message(stdout, {
                    "kind": "error",
                    "error": f"{type(error).__name__}: {error}",
                })
    if store is not None:
        store.close()
    return 0


def main() -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # Stray prints from experiment code must not corrupt the framing.
    sys.stdout = sys.stderr
    return _serve(stdin, stdout)


if __name__ == "__main__":
    sys.exit(main())
