"""Deterministic fault injection (chaos harness).

The paper stresses its channel with external load and reports how BER and
capacity degrade (Section VI); this package generalizes that experiment
into a first-class, reproducible fault model.  A seeded, JSON-serializable
:class:`FaultPlan` declares worker crashes/timeouts (sweep runner), bit
perturbations (covert channel), and cache pollution (machine traces);
injectors consume the plan through SHA-256-derived per-site RNG streams,
so every fault fires identically at any ``--jobs`` value, in any process.

Wired into :func:`repro.runner.run_shards` (``faults=`` / ``retries=``),
:class:`repro.channel.ReliableTransport` (``faults=``),
:class:`repro.channel.SlotClock` (``faults=``),
:class:`repro.sim.machine.Machine` (``faults=``), and the CLI
(``--faults PLAN.json`` on sweep commands, plus ``python -m repro chaos``).
See ``docs/robustness.md``.
"""

from .inject import (
    ChannelFaultInjector,
    ChannelFaultReport,
    InjectedCrash,
    InjectedFault,
    InjectedTimeout,
    ShardFaultInjector,
    TracePollution,
)
from .plan import FaultPlan, NO_FAULTS, site_seed

__all__ = [
    "ChannelFaultInjector",
    "ChannelFaultReport",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "InjectedTimeout",
    "NO_FAULTS",
    "ShardFaultInjector",
    "site_seed",
    "TracePollution",
]
