"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the single description of every fault the chaos
harness can inject: worker crashes and timeouts into the sweep runner,
bit-level perturbations into the covert channel, and interfering fills
into a machine trace.  Two properties make it safe to leave wired into
production paths:

* **Deterministic** — every injection decision is drawn from a SHA-256
  derived per-site RNG stream (the same construction as
  :func:`repro.runner.shard.derive_seed`), keyed by the plan seed, a site
  name (``"runner.crash"``), and the site's coordinates (shard index,
  attempt number, slot, ...).  Decisions therefore do not depend on
  execution order: shard 7's attempt 2 crashes — or doesn't — identically
  at any ``--jobs`` value.
* **JSON-serializable** — a plan round-trips through
  :meth:`to_json`/:meth:`from_json` and ships on the CLI as
  ``--faults PLAN.json``, so a chaos scenario is an artifact, not code.

The zero plan (``FaultPlan()``) injects nothing; every fault family is off
until its probability is raised.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import ReproError

#: Per-site seeds live in the same 63-bit space as shard seeds.
_SEED_SPACE = 1 << 63

_PROBABILITY_FIELDS = (
    "crash_probability",
    "timeout_probability",
    "bit_flip_probability",
    "slot_slip_probability",
    "frame_drop_probability",
    "pollution_probability",
)


def site_seed(seed: int, site: str, *components: Any) -> int:
    """A deterministic 63-bit seed for one injection site.

    SHA-256 over the compact JSON of ``[seed, site, *components]`` —
    stable across processes and platforms, so the same site draws the
    same stream wherever it runs.  ``components`` must be JSON-compatible
    scalars (shard indices, attempt numbers, party names).
    """
    material = json.dumps(
        [seed, site, *components], sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, declarative description of what to break, and how often.

    Runner faults (consumed by :func:`repro.runner.run_shards`):

    * ``crash_probability`` — chance a shard attempt dies before the worker
      runs (models a crashed worker process).
    * ``timeout_probability`` — chance a shard attempt is abandoned as hung
      (models a stuck worker; no real time is spent).

    Channel faults (consumed by :class:`repro.channel.ReliableTransport`
    and :class:`repro.channel.SlotClock`):

    * ``bit_flip_probability`` — chance each received bit position starts a
      burst of ``burst_length`` flipped bits.
    * ``slot_slip_probability`` — per-bit chance of a slot slip.  At the
      transport this deletes the bit (the receiver missed a slot, shifting
      the rest of the stream); at a ``SlotClock`` it delays the party's
      arrival by one full interval.
    * ``frame_drop_probability`` — chance an entire send arrives empty.

    Cache faults (consumed by :class:`repro.sim.machine.Machine`):

    * ``pollution_probability`` — per-trace-op chance of an interfering
      burst of ``pollution_burst`` random fills from the machine's last
      core (a third party dirtying the LLC mid-trace).
    """

    seed: int = 0
    # -- runner faults ----------------------------------------------------
    crash_probability: float = 0.0
    timeout_probability: float = 0.0
    # -- channel faults ---------------------------------------------------
    bit_flip_probability: float = 0.0
    burst_length: int = 3
    slot_slip_probability: float = 0.0
    frame_drop_probability: float = 0.0
    # -- cache faults -----------------------------------------------------
    pollution_probability: float = 0.0
    pollution_burst: int = 4

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ReproError(f"plan seed must be non-negative, got {self.seed}")
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")
        if self.burst_length < 1:
            raise ReproError(f"burst_length must be >= 1, got {self.burst_length}")
        if self.pollution_burst < 1:
            raise ReproError(
                f"pollution_burst must be >= 1, got {self.pollution_burst}"
            )

    # -- which fault families are live ------------------------------------

    @property
    def injects_runner_faults(self) -> bool:
        return self.crash_probability > 0 or self.timeout_probability > 0

    @property
    def injects_channel_faults(self) -> bool:
        return (
            self.bit_flip_probability > 0
            or self.slot_slip_probability > 0
            or self.frame_drop_probability > 0
        )

    @property
    def injects_cache_faults(self) -> bool:
        return self.pollution_probability > 0

    # -- deterministic randomness -----------------------------------------

    def stream(self, site: str, *components: Any) -> random.Random:
        """A fresh RNG stream for one injection site."""
        return random.Random(site_seed(self.seed, site, *components))

    def decide(self, site: str, probability: float, *components: Any) -> bool:
        """One order-independent Bernoulli draw for ``site`` at ``components``."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.stream(site, *components).random() < probability

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ReproError(f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ReproError(
                f"unknown fault plan field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ReproError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        path = Path(path)
        if not path.exists():
            raise ReproError(f"no fault plan at {path}")
        return cls.from_json(path.read_text())

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path


#: The plan that injects nothing (convenience for defaults and tests).
NO_FAULTS = FaultPlan()
