"""Fault injectors: the code that actually breaks things, deterministically.

Each injector consumes a :class:`~repro.faults.plan.FaultPlan` and owns one
fault family:

* :class:`ShardFaultInjector` — raises :class:`InjectedCrash` /
  :class:`InjectedTimeout` before a shard attempt runs, so the worker's
  own computation is never perturbed and a retried attempt reproduces the
  fault-free result bit for bit.
* :class:`ChannelFaultInjector` — perturbs a received bit stream with
  burst flips, slot slips (bit deletions), and whole-frame drops.
* :class:`TracePollution` — interleaves random interfering fills into a
  machine trace.

Injection decisions are drawn from per-site streams
(:meth:`FaultPlan.decide` / :meth:`FaultPlan.stream`), never from shared
RNG state, so they are independent of execution order and process layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

from ..errors import ReproError
from .plan import FaultPlan

#: Page-sized window pollution addresses are drawn from (1 GiB of lines).
_POLLUTION_ADDRESS_BITS = 30


class InjectedFault(ReproError):
    """A failure deliberately injected by a :class:`FaultPlan`."""


class InjectedCrash(InjectedFault):
    """An injected worker-process crash."""


class InjectedTimeout(InjectedFault):
    """An injected worker hang, abandoned by the runner's watchdog."""


class ShardFaultInjector:
    """Decides, per (shard, attempt), whether a runner fault fires."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def check(self, shard_index: int, attempt: int) -> None:
        """Raise the injected fault for this attempt, if any.

        Called *before* the worker runs: an injected crash can therefore
        never corrupt a result, only delay it — which is what makes a
        recoverable chaos run bit-identical to a fault-free run.
        """
        plan = self.plan
        if plan.decide("runner.crash", plan.crash_probability, shard_index, attempt):
            raise InjectedCrash(
                f"injected crash: shard {shard_index}, attempt {attempt}"
            )
        if plan.decide("runner.timeout", plan.timeout_probability, shard_index, attempt):
            raise InjectedTimeout(
                f"injected timeout: shard {shard_index}, attempt {attempt}"
            )


@dataclass
class ChannelFaultReport:
    """What one :meth:`ChannelFaultInjector.perturb` call injected."""

    flips: int = 0
    slips: int = 0
    dropped: bool = False

    @property
    def any(self) -> bool:
        return bool(self.flips or self.slips or self.dropped)


class ChannelFaultInjector:
    """Perturbs received bit streams according to a plan.

    ``context`` components (e.g. a transport's send counter) key the RNG
    streams so repeated sends see independent — but reproducible — fault
    patterns.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def perturb(
        self, bits: Sequence[int], *context: Any
    ) -> Tuple[List[int], ChannelFaultReport]:
        """Faulted copy of ``bits`` plus a report of what was injected.

        Order of application mirrors the physical story: a dropped frame
        loses everything; otherwise slot slips delete bits (shifting the
        stream left, the hardest fault for a block code), then burst flips
        corrupt what remains.
        """
        plan = self.plan
        report = ChannelFaultReport()
        if plan.decide("channel.drop", plan.frame_drop_probability, *context):
            report.dropped = True
            return [], report
        out = list(bits)
        if plan.slot_slip_probability > 0:
            rng = plan.stream("channel.slip", *context)
            p = plan.slot_slip_probability
            kept = [bit for bit in out if not rng.random() < p]
            report.slips = len(out) - len(kept)
            out = kept
        if plan.bit_flip_probability > 0:
            rng = plan.stream("channel.flip", *context)
            p = plan.bit_flip_probability
            position = 0
            while position < len(out):
                if rng.random() < p:
                    burst_end = min(position + plan.burst_length, len(out))
                    for i in range(position, burst_end):
                        out[i] ^= 1
                    report.flips += burst_end - position
                    position = burst_end
                else:
                    position += 1
        return out, report


class TracePollution:
    """Interleaves random interfering fills into a machine trace.

    Models a third party dirtying the cache while an experiment replays a
    trace: before each original op, with ``pollution_probability``, a burst
    of ``pollution_burst`` loads to random line addresses is issued from
    ``core``.  The stream is keyed by the machine seed, so two machines
    built alike pollute alike.
    """

    def __init__(self, plan: FaultPlan, machine_seed: int, core: int):
        self._rng = plan.stream("machine.pollution", machine_seed)
        self._probability = plan.pollution_probability
        self._burst = plan.pollution_burst
        self.core = core
        #: Total interfering fills injected so far (monotone).
        self.injected = 0

    def capture(self) -> tuple:
        """Snapshot the pollution stream position and fill counter.

        Machine checkpoints include this so a warm-started trial draws the
        same pollution decisions as a cold machine that replayed the prefix.
        """
        return (self._rng.getstate(), self.injected)

    def restore(self, state: tuple) -> None:
        rng_state, injected = state
        self._rng.setstate(rng_state)
        self.injected = injected

    def wrap(self, ops: Iterable[tuple]) -> Iterator[tuple]:
        """The polluted op stream (original ops all pass through, in order)."""
        rng = self._rng
        probability = self._probability
        address_space = 1 << _POLLUTION_ADDRESS_BITS
        for op in ops:
            if rng.random() < probability:
                for _ in range(self._burst):
                    addr = rng.randrange(address_space) & ~63
                    self.injected += 1
                    yield ("load", self.core, addr)
            yield op
