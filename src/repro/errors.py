"""Exception hierarchy for the Leaky Way reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A platform or cache configuration is inconsistent."""


class AddressError(ReproError):
    """An address is malformed, unmapped, or out of range."""


class CacheStateError(ReproError):
    """The cache hierarchy was driven into an impossible state.

    Raised, for example, when a replacement decision is requested in a set
    whose every way holds an in-flight line that may not be evicted.
    """


class SimulationError(ReproError):
    """The discrete-event scheduler detected an invalid program."""


class ChannelError(ReproError):
    """A covert-channel protocol violation (framing, sync, decode)."""


class AttackError(ReproError):
    """An attack primitive could not be set up (e.g. eviction set search
    exhausted its candidate pool)."""


class ServiceError(ReproError):
    """A sweep-service request failed (bad spec, dead backend, protocol)."""


class QueueFullError(ServiceError):
    """The job queue refused a submission because it is at capacity.

    ``retry_after`` carries the server's suggested back-off in seconds —
    the value an HTTP front end returns as the ``Retry-After`` header of
    its 429 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after
