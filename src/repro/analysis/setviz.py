"""Cache-set state visualisation.

Rendering a set the way the paper's figures draw it — one ``tag:age`` cell
per way, left to right in victim-scan order — is the single most useful
debugging view for replacement-state attacks.  :class:`SetWatcher` labels
the lines an experiment cares about and renders snapshots like::

    dr:3 w0:2 w1:2 w2:2 ??:1 __ ...

where ``??`` is an unlabelled (foreign) line and ``__`` an empty way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..cache.cacheset import CacheSet
from ..errors import ReproError
from ..mem.address import line_address


class SetWatcher:
    """Labelled renderer for one (or more) cache sets."""

    def __init__(self, labels: Optional[Dict[int, str]] = None):
        self._labels: Dict[int, str] = {}
        if labels:
            for addr, label in labels.items():
                self.label(addr, label)

    def label(self, addr: int, label: str) -> None:
        """Name a line; later snapshots render it as ``label:age``."""
        if not label:
            raise ReproError("label must be non-empty")
        self._labels[line_address(addr)] = label

    def label_many(self, addrs: Iterable[int], prefix: str) -> None:
        """Name a group of lines ``prefix0, prefix1, ...`` in order."""
        for i, addr in enumerate(addrs):
            self.label(addr, f"{prefix}{i}")

    def name_of(self, tag: int) -> str:
        return self._labels.get(tag, "??")

    def render(self, cache_set: CacheSet) -> str:
        """One-line snapshot of the set in way order."""
        cells: List[str] = []
        for line in cache_set.ways:
            if line is None:
                cells.append("__")
            else:
                marker = "*" if line.prefetched else ""
                cells.append(f"{self.name_of(line.tag)}:{line.age}{marker}")
        return " ".join(cells)

    def render_eviction_candidate(self, cache_set: CacheSet, now: int = 0) -> str:
        """The line the next conflict would evict, by label."""
        candidate = cache_set.eviction_candidate(now)
        if candidate is None:
            return "(set not full)"
        return self.name_of(candidate)

    def diff(self, before: List, after: CacheSet) -> str:
        """Describe what changed between a snapshot and the current state.

        ``before`` is a ``CacheSet.snapshot()`` list of (tag, age) pairs.
        """
        changes: List[str] = []
        for way, (old, line) in enumerate(zip(before, after.ways)):
            new = None if line is None else (line.tag, line.age)
            if old == new:
                continue
            old_text = "__" if old is None else f"{self.name_of(old[0])}:{old[1]}"
            new_text = "__" if new is None else f"{self.name_of(new[0])}:{new[1]}"
            changes.append(f"way{way}: {old_text} -> {new_text}")
        return "; ".join(changes) if changes else "(no change)"
