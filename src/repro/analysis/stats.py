"""Small statistics utilities (CDFs, percentiles, summaries)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ReproError


def _finite_array(samples: Sequence[float], what: str) -> np.ndarray:
    """``samples`` as a float array, rejecting NaN/Infinity loudly.

    NaN propagates silently through means and percentiles and — worse —
    into result-cache keys and store fingerprints downstream.  Mirroring
    the store's standard-JSON policy (``allow_nan=False`` in
    :mod:`repro.analysis.results_io`), non-finite inputs are an error at
    the door rather than a poisoned summary later.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size and not np.isfinite(arr).all():
        bad = arr[~np.isfinite(arr)][0]
        raise ReproError(
            f"cannot {what} non-finite samples (found {bad}); "
            "NaN/Infinity inputs are rejected like the result store rejects them"
        )
    return arr


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0 <= q <= 100) of a sample set."""
    if not 0 <= q <= 100:
        raise ReproError(f"percentile q must be in [0, 100], got {q}")
    if len(samples) == 0:
        raise ReproError("cannot take a percentile of no samples")
    return float(np.percentile(_finite_array(samples, "take a percentile of"), q))


def cdf(samples: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF as (sorted values, cumulative fractions).

    The return format matches what the paper's CDF figures (11, 12) plot.
    """
    if len(samples) == 0:
        raise ReproError("cannot build a CDF of no samples")
    arr = np.sort(_finite_array(samples, "build a CDF of"))
    n = len(arr)
    # (i + 1) / n computed vectorized; identical IEEE results because both
    # forms divide the exact integer i + 1 by the exact integer n.
    ys = np.arange(1, n + 1, dtype=float) / n
    return arr.tolist(), ys.tolist()


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-style summary of a latency population."""

    count: int
    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.0f} p50={self.p50:.0f} "
            f"p95={self.p95:.0f} min={self.minimum:.0f} max={self.maximum:.0f}"
        )


def summarize(samples: Sequence[float]) -> SampleSummary:
    if len(samples) == 0:
        raise ReproError("cannot summarize no samples")
    arr = _finite_array(samples, "summarize")
    p50, p95 = np.percentile(arr, (50, 95))
    return SampleSummary(
        count=len(arr),
        mean=float(arr.mean()),
        p50=float(p50),
        p95=float(p95),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
