"""Statistics and reporting helpers used by experiments and benchmarks."""

from .stats import SampleSummary, cdf, percentile, summarize
from .reporting import format_table, comparison_table
from .histogram import ascii_cdf, ascii_histogram
from .setviz import SetWatcher
from .results_io import load_result, result_to_dict, save_result

# reports keeps its repro.store import type-checking-only: the store
# imports results_io from this package, so an eager import would cycle.
from .reports import (
    Regression,
    Report,
    RunDiff,
    capacity_data,
    diff_latest_runs,
    fig2_data,
    generate_report,
    trajectory_data,
)

__all__ = [
    "SampleSummary",
    "cdf",
    "percentile",
    "summarize",
    "format_table",
    "comparison_table",
    "ascii_histogram",
    "ascii_cdf",
    "SetWatcher",
    "save_result",
    "load_result",
    "result_to_dict",
    "Regression",
    "Report",
    "RunDiff",
    "capacity_data",
    "diff_latest_runs",
    "fig2_data",
    "generate_report",
    "trajectory_data",
]
