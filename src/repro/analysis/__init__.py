"""Statistics and reporting helpers used by experiments and benchmarks."""

from .stats import SampleSummary, cdf, percentile, summarize
from .reporting import format_table, comparison_table
from .histogram import ascii_cdf, ascii_histogram
from .setviz import SetWatcher
from .results_io import load_result, result_to_dict, save_result

__all__ = [
    "SampleSummary",
    "cdf",
    "percentile",
    "summarize",
    "format_table",
    "comparison_table",
    "ascii_histogram",
    "ascii_cdf",
    "SetWatcher",
    "save_result",
    "load_result",
    "result_to_dict",
]
