"""Experiment-result serialization.

Every experiment returns a dataclass; this module turns those into JSON
artifacts so benchmark runs leave machine-readable traces alongside the
printed tables (`benchmarks/` writes into ``bench_artifacts/``), and past
runs can be diffed without re-simulating.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
import os
from pathlib import Path
from typing import Any, Union

from ..errors import ReproError


def _encode(value: Any) -> Any:
    """Recursively convert experiment results into JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                field.name: _encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, float):
        # ``json.dumps`` would happily emit ``NaN``/``Infinity`` — tokens
        # that are not JSON and that ``load_result``, sqlite's JSON
        # functions, and strict parsers all reject.  A NaN measurement
        # ("no data at this point") canonicalizes to null; an infinity is
        # a computation bug and is rejected loudly.
        if math.isnan(value):
            return None
        if math.isinf(value):
            raise ReproError("cannot serialize non-finite float into a result artifact")
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        # Strictly enums: a ``hasattr(value, "value")`` duck test would
        # silently serialize any object exposing a ``.value`` attribute
        # (e.g. a metrics Counter) as that attribute.
        return _encode(value.value)
    raise ReproError(f"cannot serialize {type(value).__name__} into a result artifact")


def result_to_dict(result: Any) -> dict:
    """A JSON-compatible dict for one experiment result."""
    encoded = _encode(result)
    if not isinstance(encoded, dict):
        raise ReproError("top-level result must be a dataclass or dict")
    return encoded


def save_result(result: Any, path: Union[str, Path]) -> Path:
    """Write one experiment result as pretty-printed JSON (atomically).

    The text lands in a sibling temp file first and is renamed into place,
    so a crash mid-write can never leave a torn artifact where a previous
    (valid) one stood — the same pattern ``ResultCache.put`` uses.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(result_to_dict(result), indent=2, sort_keys=True, allow_nan=False)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        tmp.replace(path)
    finally:
        if tmp.exists():  # a failed write or rename must not leave litter
            tmp.unlink()
    return path


def load_result(path: Union[str, Path]) -> dict:
    """Read an artifact back (as a plain dict; types are not reconstructed)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no artifact at {path}")
    return json.loads(path.read_text())
