"""Text histograms and CDF plots for terminal output.

The paper's figures are latency histograms (Figs 2, 4, 5) and CDFs (Figs
11, 12); these helpers render the same views in a terminal, for the CLI and
the examples.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from ..errors import ReproError
from .stats import cdf


def ascii_histogram(
    samples: Sequence[float],
    bucket: int = 20,
    width: int = 50,
) -> str:
    """Bucketed horizontal-bar histogram."""
    if len(samples) == 0:
        raise ReproError("cannot draw a histogram of no samples")
    if bucket <= 0 or width <= 0:
        raise ReproError("bucket and width must be positive")
    counts = Counter(int(s // bucket) * bucket for s in samples)
    peak = max(counts.values())
    lines: List[str] = []
    for value in sorted(counts):
        bar = "#" * max(1, counts[value] * width // peak)
        lines.append(f"  {value:>6}-{value + bucket - 1:<6} {bar} ({counts[value]})")
    return "\n".join(lines)


def ascii_cdf(
    populations: Sequence[Tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Multi-population CDF plot (one glyph per population).

    Mirrors the layout of the paper's Figure 11/12 comparisons: shared x
    axis in cycles, y axis 0..1.
    """
    if not populations:
        raise ReproError("cannot draw a CDF of no populations")
    glyphs = "*o+x@%"
    curves = []
    lo, hi = float("inf"), float("-inf")
    for label, samples in populations:
        xs, ys = cdf(samples)
        curves.append((label, xs, ys))
        lo = min(lo, xs[0])
        hi = max(hi, xs[-1])
    # Every sample across every population identical: a zero-width x range.
    # Render the whole CDF in a single column (the step function is a wall)
    # instead of dividing by zero or faking a wider axis.
    span = hi - lo
    grid = [[" "] * width for _ in range(height)]
    for index, (label, xs, ys) in enumerate(curves):
        glyph = glyphs[index % len(glyphs)]
        for x, y in zip(xs, ys):
            col = 0 if span == 0 else min(width - 1, int((x - lo) / span * (width - 1)))
            row = min(height - 1, int((1.0 - y) * (height - 1)))
            grid[row][col] = glyph
    lines = ["1.0 |" + "".join(row) for row in grid[:1]]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 |" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     {lo:<10.0f}{'cycles':^{max(0, width - 20)}}{hi:>10.0f}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} {label}" for i, (label, _, _) in enumerate(curves)
    )
    lines.append(f"     {legend}")
    return "\n".join(lines)
