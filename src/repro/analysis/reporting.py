"""Plain-text table rendering for benchmark output.

Every benchmark regenerating a paper table/figure prints its rows through
these helpers so ``pytest benchmarks/ --benchmark-only -s`` reads like the
paper's evaluation section.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ReproError("a table needs headers")
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def comparison_table(
    title: str,
    metric: str,
    entries: Sequence[tuple],
) -> str:
    """A paper-vs-measured table; entries are (label, paper, measured)."""
    rows = []
    for label, paper_value, measured in entries:
        rows.append((label, paper_value, f"{measured}"))
    return format_table(
        headers=("case", f"paper {metric}", f"measured {metric}"),
        rows=rows,
        title=title,
    )


# -- observability hooks ------------------------------------------------------


def runner_summary(registry) -> str:
    """One-line sweep-runner summary from a run's obs counters.

    The sweep commands print this under their result tables so cache
    effectiveness and pool utilization are visible without a profiler.
    ``registry`` is any :class:`repro.obs.MetricsRegistry`.
    """
    total = registry.counter("runner.shards.total").value
    cached = registry.counter("runner.shards.cached").value
    computed = registry.counter("runner.shards.computed").value
    corrupt = registry.counter("runner.cache.corrupt").value
    retries = registry.counter("runner.retries").value
    failures = registry.counter("runner.failures").value
    jobs = int(registry.gauge("runner.pool.jobs").value) or 1
    utilization = registry.gauge("runner.pool.utilization").value
    seconds = registry.histogram("runner.shard.seconds")
    parts = [
        f"[runner] {total} shard(s): {cached} cached, {computed} computed"
        + (f" ({corrupt} corrupt entries evicted)" if corrupt else "")
    ]
    if retries or failures:
        parts.append(f"{retries} retried attempt(s), {failures} failed shard(s)")
    if computed:
        parts.append(f"mean {seconds.mean:.2f}s/shard")
        parts.append(f"pool {utilization:.0%} busy over {jobs} job(s)")
    return "; ".join(parts)


def event_line(event: dict) -> str:
    """One-line rendering of a trace-event dict (``repro jobs --watch``).

    ``event`` is the JSON shape of :class:`repro.obs.trace.TraceEvent`
    (``{"name", "t", **fields}``): timestamp, event name, then the fields
    in sorted order.  Compound field values are compacted to canonical
    JSON and elided past 60 characters so the tail stays one line per
    event.
    """
    import json
    import time as time_module

    name = event.get("name", "event")
    t = event.get("t")
    stamp = (
        time_module.strftime("%H:%M:%S", time_module.localtime(t))
        if isinstance(t, (int, float))
        else "--:--:--"
    )
    parts = [f"[{stamp}]", str(name)]
    for key in sorted(k for k in event if k not in ("name", "t")):
        value = event[key]
        if isinstance(value, float):
            text = f"{value:g}"
        elif isinstance(value, (dict, list)):
            text = json.dumps(value, sort_keys=True, separators=(",", ":"))
        else:
            text = str(value)
        if len(text) > 60:
            text = text[:57] + "..."
        parts.append(f"{key}={text}")
    return " ".join(parts)


def metrics_table(registry, prefix: str = "", title: Optional[str] = None) -> str:
    """Counters and gauges of ``registry`` as an aligned table.

    ``prefix`` filters by dotted-name prefix (``"cache."``, ``"channel."``).
    """
    snapshot = registry.as_dict(prefix)
    rows: List[tuple] = [
        (name, "counter", value) for name, value in snapshot["counters"].items()
    ]
    rows += [
        (name, "gauge", f"{value:g}") for name, value in snapshot["gauges"].items()
    ]
    rows += [
        (name, "histogram", f"n={h['count']} mean={h['mean']:g}")
        for name, h in snapshot["histograms"].items()
    ]
    rows.sort()
    return format_table(("metric", "kind", "value"), rows, title=title)
