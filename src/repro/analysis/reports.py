"""Memoized analysis and regression reporting over the campaign store.

Everything in this module reads **only** the sqlite campaign store
(:class:`repro.store.CampaignStore`) — no machine is ever built, no trace
replayed.  That is the point: once a sweep has run (and been ingested by
the executors in :mod:`repro.runner`), its tables are queryable history,
and ``python -m repro report`` can regenerate the paper-shaped tables —
Figure 2's per-position eviction fractions, Figure 8's capacity curves,
Table II's peaks — plus a perf trajectory over the recorded benchmark
artifacts, from storage alone.

Three layers:

* **Memoized queries** — each extraction goes through
  :meth:`CampaignStore.memoized`, keyed by the store's content
  fingerprint; a second identical query against an unchanged store is
  answered from the ``analysis_cache`` table without touching the run
  tables (``store.memo.hits`` counts it, and CI asserts on it).
* **Tables** — markdown renderings of the queries, one section per
  EXPERIMENTS.md check that has recorded history.
* **Regression gates** — the latest run of each campaign is diffed
  against its stored predecessor.  Three gated failure classes:
  *determinism* (same params, same engine version, different result),
  *shape* (Figure 2's always-evicted property broken, a capacity peak
  dropping more than :data:`CAPACITY_DROP_TOLERANCE`), and *artifact
  floors* (a speedup artifact falling below its recorded gate, an
  instrumentation-overhead ratio above :data:`OVERHEAD_RATIO_LIMIT`).
  :func:`generate_report` returns them; the CLI exits nonzero when any
  survive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # the store imports results_io; keep the cycle lazy
    from ..store.db import CampaignStore, RunRecord

#: A capacity peak may drift down this much (fractionally) against the
#: previous stored run before it is a gated regression.
CAPACITY_DROP_TOLERANCE = 0.10

#: Instrumentation overhead artifacts gate at this throughput ratio
#: (instrumented/null), mirroring the <5% benchmark gate.
OVERHEAD_RATIO_LIMIT = 1.05

#: Absolute floors for speedup artifacts that do not record their own
#: ``gate`` field (the CI gates, made durable).
_ARTIFACT_FLOORS = {"warmstart_speedup": 2.0}


@dataclass(frozen=True)
class Regression:
    """One gated regression: where it was seen and what broke."""

    source: str  #: campaign or artifact name
    kind: str  #: ``determinism`` | ``shape`` | ``gate``
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.source}: {self.message}"


@dataclass
class RunDiff:
    """The latest run of a campaign diffed against its predecessor."""

    campaign: str
    latest: RunRecord
    previous: Optional[RunRecord]
    #: (params_json, previous result, latest result) for matched params
    #: whose results differ.
    changed: List[Tuple[str, Optional[dict], Optional[dict]]] = field(
        default_factory=list
    )
    added: int = 0  #: params only in the latest run
    removed: int = 0  #: params only in the previous run

    @property
    def identical(self) -> bool:
        """Whether the two runs stored byte-identical rows."""
        return (
            self.previous is not None
            and not self.changed
            and not self.added
            and not self.removed
            and self.latest.fingerprint == self.previous.fingerprint
        )

    @property
    def comparable(self) -> bool:
        return self.previous is not None


@dataclass
class Report:
    """A rendered report plus the regressions its gates found."""

    text: str
    regressions: List[Regression]

    @property
    def ok(self) -> bool:
        return not self.regressions


# ---------------------------------------------------------------------------
# Memoized extraction queries (store in, JSON-compatible data out)
# ---------------------------------------------------------------------------


def _campaigns_with_prefix(store: CampaignStore, prefix: str) -> List[str]:
    return [c.name for c in store.campaigns() if c.name.startswith(prefix)]


def fig2_data(store: CampaignStore) -> Dict[str, Any]:
    """Per-position eviction fractions of every insertion-sweep campaign.

    ``{campaign: {"run": id, "engine": ..., "started_at": ...,
    "positions": [[position, trials, evicted_fraction, mean_latency]...]}}``
    — the Figure 2 check, regenerated from stored shard rows alone.
    """

    def compute() -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for campaign in _campaigns_with_prefix(store, "insertion_sweep"):
            run = store.latest_runs(campaign, 1)[0]
            evicted: Dict[int, List[bool]] = {}
            latencies: Dict[int, List[float]] = {}
            for row in store.shard_rows(run.id):
                if row.result is None:
                    continue
                position = row.result["position"]
                evicted.setdefault(position, []).append(bool(row.result["evicted"]))
                latencies.setdefault(position, []).append(row.result["latency"])
            out[campaign] = {
                "run": run.id,
                "engine": run.engine,
                "executor": run.executor,
                "started_at": run.started_at,
                "positions": [
                    [
                        position,
                        len(flags),
                        sum(flags) / len(flags),
                        sum(latencies[position]) / len(latencies[position]),
                    ]
                    for position, flags in sorted(evicted.items())
                ],
            }
        return out

    return store.memoized("reports/fig2", compute)


def capacity_data(store: CampaignStore) -> Dict[str, Any]:
    """Figure 8 curves + Table II peaks of every capacity-sweep campaign.

    ``{campaign: {"run": ..., "channel": ..., "platform": ...,
    "points": [[interval, raw, ber, capacity]...], "peak": [...]}}``.
    The campaign name carries channel and platform
    (``capacity_sweep/<channel>/<platform>``), so each history is one
    like-for-like curve.
    """

    def compute() -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for campaign in _campaigns_with_prefix(store, "capacity_sweep/"):
            _, channel, platform = (campaign.split("/", 2) + ["?", "?"])[:3]
            run = store.latest_runs(campaign, 1)[0]
            points = [
                [
                    row.result["interval"],
                    row.result["raw_rate_kb_per_s"],
                    row.result["bit_error_rate"],
                    row.result["capacity_kb_per_s"],
                ]
                for row in store.shard_rows(run.id)
                if row.result is not None
            ]
            if not points:
                continue
            out[campaign] = {
                "run": run.id,
                "engine": run.engine,
                "started_at": run.started_at,
                "channel": channel,
                "platform": platform,
                "points": points,
                "peak": max(points, key=lambda p: p[3]),
            }
        return out

    return store.memoized("reports/capacity", compute)


def trajectory_data(store: CampaignStore) -> List[Dict[str, Any]]:
    """Latest-vs-previous of every recorded benchmark artifact metric.

    One entry per artifact name carrying a ``speedup`` (gated at the
    payload's own ``gate`` field or a known floor) or a
    ``throughput_ratio`` (gated at :data:`OVERHEAD_RATIO_LIMIT`).
    """

    def compute() -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for name in store.artifact_names():
            history = store.artifacts(name)
            latest = history[-1].payload
            previous = history[-2].payload if len(history) > 1 else None
            if "speedup" in latest:
                metric, value = "speedup", latest["speedup"]
                floor = latest.get("gate", _ARTIFACT_FLOORS.get(name))
                ceiling = None
            elif "throughput_ratio" in latest:
                metric, value = "throughput_ratio", latest["throughput_ratio"]
                floor, ceiling = None, OVERHEAD_RATIO_LIMIT
            else:
                continue
            out.append(
                {
                    "name": name,
                    "metric": metric,
                    "entries": len(history),
                    "latest": value,
                    "previous": previous.get(metric) if previous else None,
                    "floor": floor,
                    "ceiling": ceiling,
                    "engine": latest.get("engine_backend"),
                }
            )
        return out

    return store.memoized("reports/trajectory", compute)


# ---------------------------------------------------------------------------
# Regression diffs
# ---------------------------------------------------------------------------


def search_data(store: CampaignStore) -> Dict[str, Any]:
    """Convergence trajectory of each search campaign's latest search.

    A search campaign (``search/<objective>/<strategy>``) records one run
    per evaluation round, and every stored result row carries the
    driver's ``"score"`` — so the store alone can re-render convergence.
    Rounds are grouped into searches by round-number reset (a run whose
    shards carry ``round == 0`` starts a new search); the latest search's
    rounds come back with running ``best_so_far`` values.
    """

    def compute() -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for campaign in _campaigns_with_prefix(store, "search/"):
            searches: List[List[Dict[str, Any]]] = []
            for run in store.runs(campaign):
                rows = store.shard_rows(run.id)
                if not rows:
                    continue
                round_no = rows[0].params.get("round", 0)
                scores = [
                    row.result["score"]
                    for row in rows
                    if row.result is not None and "score" in row.result
                ]
                if round_no == 0 or not searches:
                    searches.append([])
                searches[-1].append(
                    {
                        "run": run.id,
                        "round": round_no,
                        "evaluations": len(rows),
                        "best": max(scores) if scores else None,
                        "started_at": run.started_at,
                    }
                )
            if not searches:
                continue
            rounds = searches[-1]
            best_so_far = None
            for entry in rounds:
                if entry["best"] is not None:
                    best_so_far = (
                        entry["best"]
                        if best_so_far is None
                        else max(best_so_far, entry["best"])
                    )
                entry["best_so_far"] = best_so_far
            out[campaign] = {
                "searches": len(searches),
                "rounds": rounds,
                "best": best_so_far,
                "started_at": rounds[0]["started_at"],
            }
        return out

    return store.memoized("reports/search", compute)


def diff_latest_runs(store: CampaignStore, campaign: str) -> RunDiff:
    """Diff a campaign's latest run against its stored predecessor.

    Rows are matched by canonical params JSON; a matched row with a
    different stored result (or error) is *changed*.  Unmatched rows count
    as added/removed — grid changes, not regressions.
    """
    runs = store.latest_runs(campaign, 2)
    latest = runs[0]
    if len(runs) < 2:
        return RunDiff(campaign=campaign, latest=latest, previous=None)
    previous = runs[1]
    diff = RunDiff(campaign=campaign, latest=latest, previous=previous)
    old_rows = {
        row.params_json: (row.result, row.error)
        for row in store.shard_rows(previous.id)
    }
    seen = set()
    for row in store.shard_rows(latest.id):
        key = row.params_json
        if key not in old_rows:
            diff.added += 1
            continue
        seen.add(key)
        old_result, old_error = old_rows[key]
        if (row.result, row.error) != (old_result, old_error):
            diff.changed.append((key, old_result or old_error, row.result or row.error))
    diff.removed = len(old_rows) - len(seen)
    return diff


def campaign_regressions(store: CampaignStore) -> Tuple[List[RunDiff], List[Regression]]:
    """Every campaign's latest-vs-previous diff plus the gated failures."""
    diffs: List[RunDiff] = []
    regressions: List[Regression] = []
    for summary in store.campaigns():
        diff = diff_latest_runs(store, summary.name)
        diffs.append(diff)
        if (
            diff.changed
            and diff.previous is not None
            and diff.latest.engine_version == diff.previous.engine_version
        ):
            params, old, new = diff.changed[0]
            regressions.append(
                Regression(
                    source=summary.name,
                    kind="determinism",
                    message=(
                        f"{len(diff.changed)} row(s) changed between runs "
                        f"{diff.previous.id} and {diff.latest.id} under the same "
                        f"engine version (first: {old!r} -> {new!r})"
                    ),
                )
            )
    # Shape gates over the latest recorded data.
    for campaign, data in fig2_data(store).items():
        broken = [p for p in data["positions"] if p[2] < 1.0]
        if broken:
            regressions.append(
                Regression(
                    source=campaign,
                    kind="shape",
                    message=(
                        f"prefetched line survived at position(s) "
                        f"{[p[0] for p in broken]} (Figure 2 requires eviction "
                        f"at every position)"
                    ),
                )
            )
    for campaign, data in capacity_data(store).items():
        runs = store.latest_runs(campaign, 2)
        if len(runs) < 2:
            continue
        previous_points = [
            row.result["capacity_kb_per_s"]
            for row in store.shard_rows(runs[1].id)
            if row.result is not None
        ]
        if not previous_points:
            continue
        previous_peak = max(previous_points)
        latest_peak = data["peak"][3]
        if latest_peak < previous_peak * (1.0 - CAPACITY_DROP_TOLERANCE):
            regressions.append(
                Regression(
                    source=campaign,
                    kind="shape",
                    message=(
                        f"peak capacity dropped {latest_peak:.1f} KB/s vs "
                        f"{previous_peak:.1f} KB/s stored (run {runs[1].id}), "
                        f"beyond the {CAPACITY_DROP_TOLERANCE:.0%} tolerance"
                    ),
                )
            )
    return diffs, regressions


def artifact_regressions(store: CampaignStore) -> List[Regression]:
    """Gated failures over the recorded benchmark artifacts."""
    regressions: List[Regression] = []
    for entry in trajectory_data(store):
        value = entry["latest"]
        if entry["floor"] is not None and value < entry["floor"]:
            regressions.append(
                Regression(
                    source=entry["name"],
                    kind="gate",
                    message=(
                        f"{entry['metric']} {value:.2f} fell below its "
                        f"{entry['floor']:.2f} gate"
                    ),
                )
            )
        if entry["ceiling"] is not None and value > entry["ceiling"]:
            regressions.append(
                Regression(
                    source=entry["name"],
                    kind="gate",
                    message=(
                        f"{entry['metric']} {value:.3f} exceeded the "
                        f"{entry['ceiling']:.2f} ceiling"
                    ),
                )
            )
    return regressions


# ---------------------------------------------------------------------------
# Markdown rendering
# ---------------------------------------------------------------------------


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
    return "\n".join(lines)


def _when(timestamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(timestamp))


def _fig2_section(store: CampaignStore) -> List[str]:
    data = fig2_data(store)
    if not data:
        return []
    out = ["## Figure 2 — insertion policy (from the store)", ""]
    for campaign, entry in sorted(data.items()):
        out.append(
            f"### {campaign} — run {entry['run']} "
            f"({entry['executor']}/{entry['engine']}, {_when(entry['started_at'])})"
        )
        out.append("")
        out.append(
            _markdown_table(
                ("position", "trials", "evicted", "reload p50-ish (cyc)"),
                [
                    (p[0], p[1], f"{p[2] * 100:.0f}%", f"{p[3]:.0f}")
                    for p in entry["positions"]
                ],
            )
        )
        verdict = (
            "evicted at every position ✅"
            if all(p[2] == 1.0 for p in entry["positions"])
            else "NOT always evicted ❌"
        )
        out.append("")
        out.append(f"Paper: evicted at every position. Measured: {verdict}")
        out.append("")
    return out


def _capacity_section(store: CampaignStore) -> List[str]:
    data = capacity_data(store)
    if not data:
        return []
    out = ["## Figure 8 + Table II — channel capacity (from the store)", ""]
    out.append("### Table II — peak operating points")
    out.append("")
    out.append(
        _markdown_table(
            ("channel", "platform", "interval", "raw KB/s", "BER", "capacity KB/s"),
            [
                (
                    entry["channel"],
                    entry["platform"],
                    entry["peak"][0],
                    f"{entry['peak'][1]:.0f}",
                    f"{entry['peak'][2] * 100:.2f}%",
                    f"{entry['peak'][3]:.0f}",
                )
                for _, entry in sorted(data.items())
            ],
        )
    )
    out.append("")
    for campaign, entry in sorted(data.items()):
        out.append(
            f"### Figure 8 — {campaign} — run {entry['run']} "
            f"({_when(entry['started_at'])})"
        )
        out.append("")
        out.append(
            _markdown_table(
                ("interval", "raw KB/s", "BER", "capacity KB/s"),
                [
                    (p[0], f"{p[1]:.0f}", f"{p[2] * 100:.2f}%", f"{p[3]:.0f}")
                    for p in entry["points"]
                ],
            )
        )
        out.append("")
    return out


def _search_section(store: CampaignStore) -> List[str]:
    data = search_data(store)
    if not data:
        return []
    out = ["## Search convergence", ""]
    for campaign, entry in sorted(data.items()):
        best = f"{entry['best']:.4f}" if entry["best"] is not None else "—"
        out.append(
            f"### {campaign} — search {entry['searches']} "
            f"({_when(entry['started_at'])}), best {best}"
        )
        out.append("")
        out.append(
            _markdown_table(
                ("round", "run", "evals", "round best", "best so far"),
                [
                    (
                        r["round"],
                        r["run"],
                        r["evaluations"],
                        f"{r['best']:.4f}" if r["best"] is not None else "—",
                        f"{r['best_so_far']:.4f}"
                        if r["best_so_far"] is not None
                        else "—",
                    )
                    for r in entry["rounds"]
                ],
            )
        )
        out.append("")
    return out


def _trajectory_section(store: CampaignStore) -> List[str]:
    data = trajectory_data(store)
    if not data:
        return []
    rows = []
    for entry in data:
        previous = entry["previous"]
        delta = (
            f"{(entry['latest'] - previous) / previous * 100:+.1f}%"
            if previous
            else "—"
        )
        if entry["floor"] is not None:
            gate = f">= {entry['floor']:.2f}"
            ok = entry["latest"] >= entry["floor"]
        elif entry["ceiling"] is not None:
            gate = f"<= {entry['ceiling']:.2f}"
            ok = entry["latest"] <= entry["ceiling"]
        else:  # pragma: no cover - every tracked metric carries a bound
            gate, ok = "—", True
        rows.append(
            (
                entry["name"],
                entry["metric"],
                entry["entries"],
                f"{entry['latest']:.3f}",
                f"{previous:.3f}" if previous is not None else "—",
                delta,
                gate,
                "✅" if ok else "❌",
            )
        )
    return [
        "## Perf trajectory — benchmark artifacts",
        "",
        _markdown_table(
            ("artifact", "metric", "entries", "latest", "previous", "Δ", "gate", "ok"),
            rows,
        ),
        "",
    ]


def _diff_section(diffs: List[RunDiff]) -> List[str]:
    if not diffs:
        return []
    out = ["## Regression diff — latest run vs stored history", ""]
    rows = []
    for diff in sorted(diffs, key=lambda d: d.campaign):
        if not diff.comparable:
            status = "first recorded run"
        elif diff.identical:
            status = "identical ✅"
        elif diff.changed:
            status = f"{len(diff.changed)} changed ❌"
        else:
            status = f"grid changed ({diff.added} added, {diff.removed} removed)"
        rows.append(
            (
                diff.campaign,
                diff.latest.id,
                diff.previous.id if diff.previous else "—",
                diff.latest.engine,
                f"{diff.latest.shards_cached}/{diff.latest.shards_total}",
                status,
            )
        )
    out.append(
        _markdown_table(
            ("campaign", "run", "vs", "engine", "cached", "status"), rows
        )
    )
    out.append("")
    return out


def generate_report(store: CampaignStore, title: str = "Leaky Way campaign report") -> Report:
    """The full markdown report + gated regressions, from the store alone."""
    campaigns = store.campaigns()
    artifact_names = store.artifact_names()
    diffs, regressions = campaign_regressions(store)
    regressions = regressions + artifact_regressions(store)
    lines = [
        f"# {title}",
        "",
        f"Store: `{store.path}` — {len(campaigns)} campaign(s), "
        f"{sum(c.runs for c in campaigns)} run(s), "
        f"{len(artifact_names)} artifact serie(s).",
        "",
    ]
    lines += _fig2_section(store)
    lines += _capacity_section(store)
    lines += _search_section(store)
    lines += _trajectory_section(store)
    lines += _diff_section(diffs)
    lines.append("## Verdict")
    lines.append("")
    if regressions:
        lines.append(f"{len(regressions)} gated regression(s):")
        lines.append("")
        lines.extend(f"- {r}" for r in regressions)
    else:
        lines.append("No gated regressions. ✅")
    lines.append("")
    return Report(text="\n".join(lines), regressions=regressions)
