"""Successive halving over the objective's fidelity ladder.

Sample a wide cohort, score everyone on the cheapest rung, promote the
top ``1/eta`` fraction to the next fidelity, repeat; the last survivors
are scored at full fidelity and the best of them wins.  The initial
cohort size is the largest that fits the budget given the promotion
schedule, so ``--budget`` directly buys breadth at the bottom of the
ladder — where evaluations are cheapest.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..errors import ReproError
from ..runner.shard import derive_seed
from .driver import EvalContext, SearchDriver, _RunState
from .objectives import Objective
from .space import Candidate


class SuccessiveHalving(SearchDriver):
    """Rung-based budget promotion across the fidelity ladder."""

    strategy = "halving"

    def __init__(self, objective: Objective, budget: int, eta: int = 2):
        super().__init__(objective, budget)
        if eta < 2:
            raise ReproError(f"halving factor eta must be >= 2, got {eta}")
        if budget < len(objective.fidelities):
            raise ReproError(
                f"budget {budget} cannot cover one evaluation on each of the "
                f"{len(objective.fidelities)} fidelity rungs"
            )
        self.eta = eta

    def rung_sizes(self) -> List[int]:
        """Cohort size at each rung: the widest start the budget affords."""
        rungs = len(self.objective.fidelities)

        def cost(n0: int) -> int:
            return sum(max(1, n0 // self.eta ** i) for i in range(rungs))

        n0 = 1
        while cost(n0 + 1) <= self.budget:
            n0 += 1
        return [max(1, n0 // self.eta ** i) for i in range(rungs)]

    def search(self, ctx: EvalContext, state: _RunState) -> Tuple[Candidate, float]:
        space = self.objective.space
        rng = random.Random(derive_seed(ctx.seed, "search", self.strategy))
        sizes = self.rung_sizes()
        cohort = space.sample_distinct(rng, sizes[0], frozenset())

        winner: Candidate = None
        winner_score = float("-inf")
        for rung, fidelity in enumerate(self.objective.fidelities):
            cohort = cohort[: sizes[rung]]
            scored = self.evaluate(ctx, state, cohort, fidelity, rung)
            if not scored:
                break
            # Promote by score; ties keep cohort position (earlier draw
            # wins), so the rung outcome is a pure function of the seed.
            ranking = sorted(
                range(len(scored)), key=lambda j: (-scored[j][1], j)
            )
            cohort = [scored[j][0] for j in ranking]
            winner, winner_score = scored[ranking[0]]
        return winner, winner_score
