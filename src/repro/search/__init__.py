"""Adaptive search over sweep spaces: seeded, budgeted, substrate-backed.

Grid sweeps (:mod:`repro.experiments`) spend their budget uniformly;
this package spends it *adaptively* — three strategies behind one
:class:`~repro.search.driver.SearchDriver` interface, all expressing
evaluations as ordinary shard batches on the runner substrate, so a
search inherits process parallelism, content-addressed result caching,
fault injection/retry, metrics + tracing, and campaign-store recording
without any code of its own:

* :class:`~repro.search.mutate.MutationSearch` (``mutate``) — elitist
  generate→evaluate→mutate loop with seeded multi-scale operators.
* :class:`~repro.search.halving.SuccessiveHalving` (``halving``) —
  rung-based budget promotion over the objective's fidelity ladder.
* :class:`~repro.search.bandit.UCBSearch` (``bandit``) — UCB budget
  allocation across contiguous sweep regions.

Determinism contract: with a fixed root seed, a search's candidate
sequence, every score, the winner, and the search fingerprint are
bit-identical at any ``--jobs`` value, with or without a *recoverable*
fault plan.  See ``docs/search.md``.

CLI: ``python -m repro search --objective capacity-cliff --strategy
mutate --budget 32``.
"""

from .bandit import UCBSearch
from .driver import EvalContext, Evaluation, SearchDriver, SearchOutcome
from .halving import SuccessiveHalving
from .mutate import MutationSearch
from .objectives import (
    CapacityCliffObjective,
    DetectionKneeObjective,
    OBJECTIVES,
    Objective,
    ToyCliffObjective,
    make_objective,
)
from .space import Candidate, IntDimension, SearchSpace, candidate_key

STRATEGIES = ("mutate", "halving", "bandit")


def make_driver(strategy: str, objective: Objective, budget: int) -> SearchDriver:
    """Build a stock strategy by CLI name."""
    from ..errors import ReproError

    if strategy == "mutate":
        return MutationSearch(objective, budget)
    if strategy == "halving":
        return SuccessiveHalving(objective, budget)
    if strategy == "bandit":
        return UCBSearch(objective, budget)
    raise ReproError(
        f"unknown search strategy {strategy!r} (choose from {', '.join(STRATEGIES)})"
    )


__all__ = [
    "Candidate",
    "CapacityCliffObjective",
    "DetectionKneeObjective",
    "EvalContext",
    "Evaluation",
    "IntDimension",
    "MutationSearch",
    "OBJECTIVES",
    "Objective",
    "STRATEGIES",
    "SearchDriver",
    "SearchOutcome",
    "SearchSpace",
    "SuccessiveHalving",
    "ToyCliffObjective",
    "UCBSearch",
    "candidate_key",
    "make_driver",
    "make_objective",
]
