"""The `SearchDriver` contract: seeded, budgeted, store-backed evaluation.

Every strategy in :mod:`repro.search` is a subclass of
:class:`SearchDriver` that proposes candidates; the base class owns the
part all three share — turning a batch of candidates into an ordinary
shard sweep on the runner substrate.  That split is what makes the
strategies deterministic for free:

* Candidate seeds come from :func:`~repro.runner.shard.make_content_shards`
  restricted to the objective's own params, so the same candidate gets
  the same seed (and therefore the same simulated result) no matter
  which round, batch position, or strategy evaluates it.  The search
  ``round`` number rides along in the shard params — the stored rows are
  self-describing — but never feeds seeds or cache keys' content.
* Each round runs through ``run_shards``/``run_warm_shards``, inheriting
  the stable merge order, the content-addressed result cache, the
  fault/retry layer, and campaign-store recording unchanged.
* The search fingerprint hashes the per-round
  :func:`~repro.store.run_fingerprint` values in round order, so two
  searches match iff every round evaluated the same candidates and saw
  the same results — at any ``jobs`` value.

Budget semantics: ``budget`` caps *computed evaluations*.  A candidate
the driver has already scored at the same fidelity is served from an
in-run memo and costs nothing; a round that would overrun the budget is
trimmed to the remaining allowance, deterministically (request order).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..faults import FaultPlan
from ..obs import EventTrace, MetricsRegistry, NULL_TRACE, get_registry
from ..runner.cache import ResultCache
from ..runner.pool import is_error_record
from ..runner.shard import canonical_json, make_content_shards
from ..store.db import run_fingerprint
from .objectives import Objective
from .space import Candidate, candidate_key


@dataclass
class EvalContext:
    """Everything one search run threads into its shard sweeps.

    Mirrors the sweep commands' runner surface: ``seed`` is the search's
    root seed (candidate proposal stream *and* shard seed derivation);
    the rest passes straight through to the runner.  ``store=None``
    resolves the process default / ``$REPRO_STORE`` as usual, and
    ``runtime=None`` likewise resolves the process-default execution
    runtime — :meth:`SearchDriver.run` installs one persistent
    :class:`~repro.runner.Runtime` per search when nothing else is
    configured, so a 40-round search spawns its worker pool once.
    """

    seed: int = 0
    jobs: int = 1
    cache: Optional[ResultCache] = None
    metrics: Optional[MetricsRegistry] = None
    trace: Optional[EventTrace] = None
    faults: Optional[FaultPlan] = None
    retries: int = 0
    store: Any = None
    campaign: Optional[str] = None
    runtime: Any = None


@dataclass(frozen=True)
class Evaluation:
    """One scored candidate, in global evaluation order."""

    order: int
    round: int
    candidate: Candidate
    fidelity: int
    score: float


@dataclass
class SearchOutcome:
    """What a finished search hands back (and what the CLI prints)."""

    objective: str
    strategy: str
    budget: int
    grid_size: int
    winner: Candidate
    winner_score: float
    evaluations: List[Evaluation] = field(default_factory=list)
    round_fingerprints: List[str] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def evaluations_used(self) -> int:
        return len(self.evaluations)

    @property
    def rounds(self) -> int:
        return self.evaluations[-1].round + 1 if self.evaluations else 0

    def trajectory(self) -> List[Dict[str, Any]]:
        """Per-round convergence rows: evaluations, round best, best so far.

        "Best so far" tracks the running maximum of evaluation scores;
        across a fidelity ladder the early entries are low-fidelity
        estimates, which is exactly what a convergence plot should show.
        """
        rows: List[Dict[str, Any]] = []
        best = -math.inf
        for ev in self.evaluations:
            if not rows or rows[-1]["round"] != ev.round:
                rows.append(
                    {"round": ev.round, "fidelity": ev.fidelity,
                     "evaluations": 0, "best": -math.inf, "best_so_far": best}
                )
            row = rows[-1]
            row["evaluations"] += 1
            row["best"] = max(row["best"], ev.score)
            best = max(best, ev.score)
            row["best_so_far"] = best
        return rows


class _RunState:
    """Mutable per-run bookkeeping shared by the base-class helpers."""

    def __init__(self) -> None:
        self.evaluations: List[Evaluation] = []
        self.memo: Dict[Tuple[str, int], float] = {}
        self.fingerprints: List[str] = []
        self.used = 0


class SearchDriver:
    """Base class: one objective, one budget, one seeded ``run``.

    Subclasses implement :meth:`search`, proposing candidate batches and
    calling :meth:`evaluate`; the base class supplies the determinism,
    budget, caching, and store plumbing described in the module
    docstring, and wraps the result into a :class:`SearchOutcome`.
    """

    #: Subclass strategy name (CLI ``--strategy`` value, campaign suffix).
    strategy = "base"

    def __init__(self, objective: Objective, budget: int):
        if budget < 1:
            raise ReproError(f"search budget must be >= 1, got {budget}")
        self.objective = objective
        self.budget = budget

    # -- subclass surface --------------------------------------------------

    def search(self, ctx: EvalContext, state: _RunState) -> Tuple[Candidate, float]:
        """Propose, evaluate, and return ``(winner, winner_score)``."""
        raise NotImplementedError

    # -- shared machinery --------------------------------------------------

    def run(self, ctx: Optional[EvalContext] = None) -> SearchOutcome:
        """Execute the search; deterministic in ``ctx.seed`` at any ``jobs``.

        When no runtime is configured anywhere (no ``ctx.runtime``, no
        process default, no ``$REPRO_RUNTIME``), the driver owns one
        persistent :class:`~repro.runner.Runtime` for the whole search —
        every round reuses one worker pool — and closes it before
        returning.  An explicit choice (including ``FRESH``) is respected.
        """
        from ..runner.runtime import Runtime, runtime_configured

        ctx = ctx if ctx is not None else EvalContext()
        if ctx.campaign is None:
            ctx.campaign = f"search/{self.objective.name}/{self.strategy}"
        state = _RunState()
        registry = ctx.metrics if ctx.metrics is not None else get_registry()
        owned_runtime = None
        if ctx.runtime is None and ctx.jobs > 1 and not runtime_configured():
            owned_runtime = ctx.runtime = Runtime(name=f"search/{self.strategy}")
        try:
            winner, winner_score = self.search(ctx, state)
        finally:
            if owned_runtime is not None:
                owned_runtime.close()
                ctx.runtime = None
        if winner is None:
            raise ReproError(
                f"{self.strategy} search produced no scored candidate "
                f"(budget {self.budget})"
            )
        fingerprint = hashlib.sha256(
            canonical_json(
                ["search", self.objective.name, self.strategy, state.fingerprints]
            ).encode("utf-8")
        ).hexdigest()
        registry.counter("search.evaluations").inc(0)  # materialize
        registry.counter("search.runs").inc()
        registry.gauge("search.best_score").set(winner_score)
        trace = ctx.trace if ctx.trace is not None else NULL_TRACE
        trace.emit(
            "search.done",
            objective=self.objective.name,
            strategy=self.strategy,
            evaluations=state.used,
            budget=self.budget,
            best=winner_score,
            fingerprint=fingerprint,
        )
        return SearchOutcome(
            objective=self.objective.name,
            strategy=self.strategy,
            budget=self.budget,
            grid_size=self.objective.space.grid_size,
            winner=winner,
            winner_score=winner_score,
            evaluations=list(state.evaluations),
            round_fingerprints=list(state.fingerprints),
            fingerprint=fingerprint,
        )

    def remaining(self, state: _RunState) -> int:
        return self.budget - state.used

    def evaluate(
        self,
        ctx: EvalContext,
        state: _RunState,
        candidates: Sequence[Candidate],
        fidelity: int,
        round_no: int,
    ) -> List[Tuple[Candidate, float]]:
        """Score ``candidates`` at ``fidelity``; one shard batch per call.

        Returns ``(candidate, score)`` pairs in request order.  Already-
        scored (candidate, fidelity) pairs come from the in-run memo and
        are free; fresh candidates past the remaining budget are dropped
        from the tail (their pairs are omitted from the return).  A shard
        that exhausts its retries scores ``-inf`` — a deterministic
        verdict, since fault decisions key on (shard index, attempt).
        """
        fresh: List[Candidate] = []
        for candidate in candidates:
            key = (candidate_key(candidate), fidelity)
            if key not in state.memo and all(
                candidate_key(c) != key[0] for c in fresh
            ):
                fresh.append(candidate)
        fresh = fresh[: max(0, self.remaining(state))]
        if fresh:
            params_sets = [
                dict(self.objective.params(candidate, fidelity), round=round_no)
                for candidate in fresh
            ]
            seed_keys = sorted(k for k in params_sets[0] if k != "round")
            shards = make_content_shards(ctx.seed, params_sets, seed_keys=seed_keys)
            rows = self.objective.evaluate_shards(shards, ctx)
            state.fingerprints.append(run_fingerprint(shards, rows))
            registry = ctx.metrics if ctx.metrics is not None else get_registry()
            registry.counter("search.evaluations").inc(len(fresh))
            registry.counter("search.rounds").inc()
            best_here = -math.inf
            for candidate, row in zip(fresh, rows):
                if is_error_record(row):
                    score = -math.inf
                elif "score" not in row:
                    raise ReproError(
                        f"objective {self.objective.name!r} returned a row "
                        "without a 'score' key; search objectives must score "
                        "every evaluation"
                    )
                else:
                    score = float(row["score"])
                state.memo[(candidate_key(candidate), fidelity)] = score
                state.evaluations.append(
                    Evaluation(
                        order=len(state.evaluations),
                        round=round_no,
                        candidate=dict(candidate),
                        fidelity=fidelity,
                        score=score,
                    )
                )
                state.used += 1
                best_here = max(best_here, score)
            trace = ctx.trace if ctx.trace is not None else NULL_TRACE
            trace.emit(
                "search.round",
                strategy=self.strategy,
                round=round_no,
                fidelity=fidelity,
                evaluated=len(fresh),
                best=best_here,
                used=state.used,
                budget=self.budget,
            )
        scored: List[Tuple[Candidate, float]] = []
        for candidate in candidates:
            score = state.memo.get((candidate_key(candidate), fidelity))
            if score is not None:
                scored.append((candidate, score))
        return scored
