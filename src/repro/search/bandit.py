"""UCB bandit over sweep regions: spend the budget where scores are.

The space's widest dimension is partitioned into ``arms`` contiguous
regions; each round the driver pulls the arm with the best upper
confidence bound and samples a fixed-size batch of fresh candidates from
that region at full fidelity.  The round size is a constant — never a
function of ``--jobs`` — so budget allocation (and therefore every
evaluation) is identical however the shards are parallelized.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from ..errors import ReproError
from ..runner.shard import derive_seed
from .driver import EvalContext, SearchDriver, _RunState
from .objectives import Objective
from .space import Candidate, candidate_key


class _Arm:
    """One region's pull statistics."""

    def __init__(self, region):
        self.region = region
        self.pulls = 0
        self.best = -math.inf
        self.exhausted = False


class UCBSearch(SearchDriver):
    """Budget allocation across regions by upper confidence bound."""

    strategy = "bandit"

    def __init__(
        self,
        objective: Objective,
        budget: int,
        arms: int = 4,
        round_size: int = 4,
        explore: float = 0.5,
    ):
        super().__init__(objective, budget)
        if arms < 2:
            raise ReproError(f"bandit needs >= 2 arms, got {arms}")
        if round_size < 1:
            raise ReproError(f"round size must be >= 1, got {round_size}")
        self.arms = arms
        self.round_size = round_size
        self.explore = explore

    def _pick(self, arms: List[_Arm]) -> int:
        """The arm index to pull: unvisited first, then best UCB.

        The exploitation term is each region's *best observed score*, not
        its mean — this is a maximum search, and a region holding the
        optimum right next to a cliff would be punished forever by its
        mean.  The exploration bonus is scaled by the spread of those
        bests so the tradeoff is invariant to the objective's units
        (capacity in KB/s vs a toy score near 1.0); with no spread yet,
        it falls back to 1.0.  All ties break on the lowest region index.
        """
        live = [i for i, arm in enumerate(arms) if not arm.exhausted]
        for i in live:
            if arms[i].pulls == 0:
                return i
        bests = [arms[i].best for i in live]
        spread = max(bests) - min(bests) if len(bests) > 1 else 0.0
        scale = spread if spread > 0.0 else 1.0
        total_pulls = sum(arms[i].pulls for i in live)
        best, best_ucb = live[0], -math.inf
        for i in live:
            ucb = arms[i].best + self.explore * scale * math.sqrt(
                2.0 * math.log(max(total_pulls, 2)) / arms[i].pulls
            )
            if ucb > best_ucb:
                best, best_ucb = i, ucb
        return best

    def search(self, ctx: EvalContext, state: _RunState) -> Tuple[Candidate, float]:
        fidelity = self.objective.full_fidelity
        rng = random.Random(derive_seed(ctx.seed, "search", self.strategy))
        arms = [_Arm(region) for region in self.objective.space.regions(self.arms)]
        seen: set = set()
        winner: Candidate = None
        winner_score = float("-inf")
        winner_order = -1

        round_no = 0
        while self.remaining(state) > 0 and not all(a.exhausted for a in arms):
            index = self._pick(arms)
            arm = arms[index]
            batch = arm.region.sample_distinct(
                rng, min(self.round_size, self.remaining(state)), frozenset(seen)
            )
            if not batch:
                arm.exhausted = True
                continue
            order_base = len(state.evaluations)
            scored = self.evaluate(ctx, state, batch, fidelity, round_no)
            seen.update(candidate_key(c) for c, _ in scored)
            for offset, (candidate, score) in enumerate(scored):
                arm.pulls += 1
                arm.best = max(arm.best, score)
                order = order_base + offset
                # Strictly-better wins; equal scores keep the earlier
                # evaluation, making the winner order-stable.
                if score > winner_score or (
                    score == winner_score and order < winner_order
                ):
                    winner, winner_score, winner_order = candidate, score, order
            round_no += 1
        return winner, winner_score
