"""Search objectives: what a candidate *is* and how it gets scored.

An :class:`Objective` binds a :class:`~repro.search.space.SearchSpace` to
a shard worker: :meth:`Objective.params` turns one candidate plus a
fidelity rung into ordinary shard params, and
:meth:`Objective.evaluate_shards` runs the batch on the runner substrate.
Every result row carries a ``"score"`` key (higher is better) — the
driver requires it, and because the score is *in the stored row*, the
campaign store can re-render a search's convergence trajectory without
any driver state (see :func:`repro.analysis.reports.search_data`).

Three objectives ship:

* ``toy-cliff`` — a synthetic capacity cliff with seeded noise that
  shrinks with fidelity.  Cheap enough for tests, CI, and benchmarks to
  measure search efficiency against an exhaustive grid.
* ``capacity-cliff`` — localize the paper's Figure 8 operating cliff:
  the NTP+NTP transmission interval maximizing channel capacity, scored
  on the real simulator via the capacity sweep's warm-start plan.
  Fidelity = message length (short probes first, long confirms).
* ``detection-knee`` — locate the Section V-A3 usable-frequency knee:
  the shortest victim period an attack still detects reliably, scored as
  ``-(period) - penalty(FN > 10%)``.  Fidelity = observation duration.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import SKYLAKE, PlatformConfig
from ..errors import ReproError
from ..experiments.capacity_sweep import (
    _CAPACITY_PREFIX_KEYS,
    _capacity_body,
    _capacity_setup,
)
from ..experiments.detection_sweep import (
    _DETECTION_PREFIX_KEYS,
    _detection_body,
    _detection_setup,
)
from ..runner import Shard, WarmStartPlan, run_shards, run_warm_shards
from ..victims.noise import NoiseConfig
from .space import Candidate, IntDimension, SearchSpace


class Objective:
    """One searchable quantity: a space, a fidelity ladder, a scorer.

    ``fidelities`` ascend; the last rung is *full* fidelity — the one
    single-fidelity strategies (mutate, bandit) evaluate at, and the one
    successive halving promotes survivors to.
    """

    name: str = "objective"
    space: SearchSpace
    fidelities: Tuple[int, ...]

    @property
    def full_fidelity(self) -> int:
        return self.fidelities[-1]

    def params(self, candidate: Candidate, fidelity: int) -> Dict[str, Any]:
        """Shard params for one evaluation (pure in candidate + fidelity)."""
        raise NotImplementedError

    def evaluate_shards(self, shards: Sequence[Shard], ctx) -> List[Dict[str, Any]]:
        """Run one evaluation batch; rows must carry ``"score"``."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name}: {self.space.describe()}"


# ---------------------------------------------------------------------------
# toy-cliff
# ---------------------------------------------------------------------------


def _toy_cliff_worker(shard: Shard) -> Dict[str, Any]:
    """Synthetic Figure 8 shape: score climbs linearly, falls off a cliff.

    The maximum sits exactly at the planted cliff.  Noise is seeded from
    the shard's content-derived seed and scales like ``1/sqrt(fidelity)``
    — the standard-error shape of averaging ``fidelity`` trials — so the
    ladder's cheap rungs are noisy estimates of the expensive ones.
    """
    p = shard.params
    x = p["interval"]
    base = x / 1000.0 if x <= p["cliff"] else x / 1000.0 - 1.0
    noise = random.Random(shard.seed).gauss(
        0.0, p["noise_scale"] / math.sqrt(p["fidelity"])
    )
    return {"interval": x, "fidelity": p["fidelity"], "score": base + noise}


class ToyCliffObjective(Objective):
    """Planted capacity cliff on a 1-D interval grid (tests, CI, benches)."""

    name = "toy-cliff"

    def __init__(
        self,
        lo: int = 0,
        hi: int = 400,
        step: int = 4,
        cliff: int = 256,
        noise_scale: float = 0.002,
        fidelities: Tuple[int, ...] = (1, 4, 16),
    ):
        if not (lo <= cliff <= hi) or (cliff - lo) % step:
            raise ReproError(
                f"planted cliff {cliff} must be a grid point of [{lo}, {hi}]/{step}"
            )
        self.space = SearchSpace.of(interval=IntDimension(lo, hi, step))
        self.fidelities = tuple(fidelities)
        self.cliff = cliff
        self.noise_scale = noise_scale

    def params(self, candidate: Candidate, fidelity: int) -> Dict[str, Any]:
        return {
            "objective": self.name,
            "interval": candidate["interval"],
            "cliff": self.cliff,
            "noise_scale": self.noise_scale,
            "fidelity": fidelity,
        }

    def evaluate_shards(self, shards: Sequence[Shard], ctx) -> List[Dict[str, Any]]:
        return run_shards(
            _toy_cliff_worker, shards, jobs=ctx.jobs,
            cache=ctx.cache, cache_tag="search/toy_cliff/v1",
            metrics=ctx.metrics, trace=ctx.trace,
            faults=ctx.faults, retries=ctx.retries,
            store=ctx.store, campaign=ctx.campaign,
            runtime=getattr(ctx, "runtime", None),
        )


# ---------------------------------------------------------------------------
# capacity-cliff
# ---------------------------------------------------------------------------


def _capacity_score_body(machine, chan, shard: Shard) -> Dict[str, Any]:
    """One Figure 8 point with the search's scalar verdict attached."""
    row = _capacity_body(machine, chan, shard)
    row["score"] = row["capacity_kb_per_s"]
    return row


_CAPACITY_SCORE_PLAN = WarmStartPlan(
    setup=_capacity_setup,
    body=_capacity_score_body,
    prefix_keys=_CAPACITY_PREFIX_KEYS,
)


class CapacityCliffObjective(Objective):
    """Find the NTP+NTP interval that maximizes channel capacity.

    The Figure 8 curve climbs as the interval shrinks (higher raw rate)
    until synchronization collapses and errors erase the capacity — a
    cliff.  The grid sweep samples 12 hand-picked intervals; this
    objective searches the full interval range at grid resolution
    ``step`` and lets the strategy spend evaluations near the cliff only.
    """

    name = "capacity-cliff"

    def __init__(
        self,
        config: PlatformConfig = SKYLAKE,
        channel: str = "ntp+ntp",
        lo: int = 1050,
        hi: int = 4200,
        step: int = 50,
        machine_seed: int = 0,
        channel_seed: int = 0,
        engine: Optional[str] = None,
        fidelities: Tuple[int, ...] = (24, 48, 96),
    ):
        self.space = SearchSpace.of(interval=IntDimension(lo, hi, step))
        self.fidelities = tuple(fidelities)
        self.config = config
        self.channel = channel
        self.machine_seed = machine_seed
        self.channel_seed = channel_seed
        self.engine = engine

    def params(self, candidate: Candidate, fidelity: int) -> Dict[str, Any]:
        return {
            "config": self.config,
            "machine_seed": self.machine_seed,
            "engine": self.engine,
            "channel": self.channel,
            "interval": candidate["interval"],
            "n_bits": fidelity,
            "seed": self.channel_seed,
            "noise": NoiseConfig(),
        }

    def evaluate_shards(self, shards: Sequence[Shard], ctx) -> List[Dict[str, Any]]:
        return run_warm_shards(
            _CAPACITY_SCORE_PLAN, shards, jobs=ctx.jobs,
            cache=ctx.cache, cache_tag="search/capacity_cliff/v1",
            metrics=ctx.metrics, trace=ctx.trace,
            faults=ctx.faults, retries=ctx.retries,
            store=ctx.store, campaign=ctx.campaign,
            runtime=getattr(ctx, "runtime", None),
        )


# ---------------------------------------------------------------------------
# detection-knee
# ---------------------------------------------------------------------------


def _detection_score_body(machine, context, shard: Shard) -> Dict[str, Any]:
    """One (attack, period) point scored as a knee objective.

    Reward shorter periods linearly, but charge a steep penalty once the
    false-negative rate exceeds the 10% usability threshold — the maximum
    therefore sits at the shortest period the attack still handles, i.e.
    the ROC knee the detection sweep brackets by hand.
    """
    row = _detection_body(machine, context, shard)
    miss = max(0.0, row["false_negative_rate"] - 0.1)
    row["score"] = -(shard.params["period"] / 1000.0) - 100.0 * miss
    return row


_DETECTION_SCORE_PLAN = WarmStartPlan(
    setup=_detection_setup,
    body=_detection_score_body,
    prefix_keys=_DETECTION_PREFIX_KEYS,
)


class DetectionKneeObjective(Objective):
    """Find the shortest victim period an attack detects with FN <= 10%."""

    name = "detection-knee"

    def __init__(
        self,
        config: PlatformConfig = SKYLAKE,
        attack: str = "PrimeScope",
        lo: int = 900,
        hi: int = 4500,
        step: int = 100,
        machine_seed: int = 0,
        engine: Optional[str] = None,
        fidelities: Tuple[int, ...] = (60_000, 180_000, 420_000),
    ):
        self.space = SearchSpace.of(period=IntDimension(lo, hi, step))
        self.fidelities = tuple(fidelities)
        self.config = config
        self.attack = attack
        self.machine_seed = machine_seed
        self.engine = engine

    def params(self, candidate: Candidate, fidelity: int) -> Dict[str, Any]:
        return {
            "config": self.config,
            "machine_seed": self.machine_seed,
            "engine": self.engine,
            "attack": self.attack,
            "period": candidate["period"],
            "duration": fidelity,
        }

    def evaluate_shards(self, shards: Sequence[Shard], ctx) -> List[Dict[str, Any]]:
        return run_warm_shards(
            _DETECTION_SCORE_PLAN, shards, jobs=ctx.jobs,
            cache=ctx.cache, cache_tag="search/detection_knee/v1",
            metrics=ctx.metrics, trace=ctx.trace,
            faults=ctx.faults, retries=ctx.retries,
            store=ctx.store, campaign=ctx.campaign,
            runtime=getattr(ctx, "runtime", None),
        )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

OBJECTIVES = ("toy-cliff", "capacity-cliff", "detection-knee")


def make_objective(
    name: str,
    config: PlatformConfig = SKYLAKE,
    engine: Optional[str] = None,
) -> Objective:
    """Build a stock objective by CLI name."""
    if name == "toy-cliff":
        return ToyCliffObjective()
    if name == "capacity-cliff":
        return CapacityCliffObjective(config=config, engine=engine)
    if name == "detection-knee":
        return DetectionKneeObjective(config=config, engine=engine)
    raise ReproError(
        f"unknown search objective {name!r} (choose from {', '.join(OBJECTIVES)})"
    )
