"""Generate -> evaluate -> mutate: an elitist seeded mutation loop.

The workhorse strategy for cliff localization.  Each generation scores a
population at full fidelity, keeps the top ``elites`` candidates ever
seen, and breeds the next population by mutating the elites with the
space's multi-scale operator (mostly local steps, occasional jumps and
restarts).  Selection ties break on evaluation order — earlier wins — so
the whole run is a pure function of the root seed.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..errors import ReproError
from ..runner.shard import derive_seed
from .driver import EvalContext, SearchDriver, _RunState
from .objectives import Objective
from .space import Candidate, candidate_key


class MutationSearch(SearchDriver):
    """Population loop with elitist selection and seeded mutation."""

    strategy = "mutate"

    def __init__(
        self,
        objective: Objective,
        budget: int,
        population: int = 8,
        elites: int = 2,
    ):
        super().__init__(objective, budget)
        if population < 1 or elites < 1 or elites > population:
            raise ReproError(
                f"need 1 <= elites <= population, got {elites}/{population}"
            )
        self.population = population
        self.elites = elites

    def search(self, ctx: EvalContext, state: _RunState) -> Tuple[Candidate, float]:
        space = self.objective.space
        fidelity = self.objective.full_fidelity
        rng = random.Random(derive_seed(ctx.seed, "search", self.strategy))
        seen: set = set()
        #: (negated score, evaluation order, candidate) — sortable, ties on
        #: order so selection never depends on dict iteration or scheduling.
        elite_pool: List[Tuple[float, int, Candidate]] = []

        population = space.sample_distinct(
            rng, min(self.population, self.remaining(state)), frozenset(seen)
        )
        round_no = 0
        while population and self.remaining(state) > 0:
            order_base = len(state.evaluations)
            scored = self.evaluate(ctx, state, population, fidelity, round_no)
            seen.update(candidate_key(c) for c, _ in scored)
            for offset, (candidate, score) in enumerate(scored):
                elite_pool.append((-score, order_base + offset, candidate))
            elite_pool.sort(key=lambda item: (item[0], item[1]))
            del elite_pool[self.elites:]

            # Breed the next generation: cycle the elites as parents, keep
            # only unseen children, and top up with fresh samples when
            # mutation keeps landing on explored ground.
            population = []
            queued = set()
            attempts = 0
            while len(population) < self.population and attempts < self.population * 24:
                parent = elite_pool[attempts % len(elite_pool)][2]
                child = space.mutate(parent, rng)
                key = candidate_key(child)
                if key not in seen and key not in queued:
                    queued.add(key)
                    population.append(child)
                attempts += 1
            if len(population) < self.population:
                population.extend(
                    space.sample_distinct(
                        rng,
                        self.population - len(population),
                        frozenset(seen | queued),
                    )
                )
            round_no += 1

        if not elite_pool:
            return None, float("-inf")  # run() turns this into a ReproError
        best = elite_pool[0]
        return best[2], -best[0]
