"""Integer search spaces: sampling, mutation, and region partitioning.

Every adaptive driver in :mod:`repro.search` explores a
:class:`SearchSpace` — named integer dimensions with inclusive bounds and
a step grid.  The space owns the three primitive moves the strategies
share: draw a candidate (seeded), perturb a candidate (seeded,
multi-scale), and partition itself into contiguous regions (for bandit
budget allocation).  All randomness flows through the caller's
``random.Random`` so a strategy's candidate sequence is a pure function
of its root seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..errors import ReproError
from ..runner.shard import canonical_json

Candidate = Dict[str, int]


@dataclass(frozen=True)
class IntDimension:
    """One inclusive integer range ``[lo, hi]`` on a ``step`` grid."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ReproError(f"dimension step must be positive, got {self.step}")
        if self.hi < self.lo:
            raise ReproError(f"dimension bounds inverted: [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        """Number of grid points in the range."""
        return (self.hi - self.lo) // self.step + 1

    def clamp(self, value: int) -> int:
        """``value`` snapped onto the grid and clamped into the range."""
        snapped = self.lo + round((value - self.lo) / self.step) * self.step
        return max(self.lo, min(self.hi, snapped))

    def sample(self, rng: random.Random) -> int:
        """A uniform grid point."""
        return self.lo + rng.randrange(self.size) * self.step

    def mutate(self, value: int, rng: random.Random) -> int:
        """A seeded perturbation of ``value``.

        Multi-scale: mostly small grid steps (local hill climbing), with a
        geometric tail of larger jumps and an occasional uniform restart —
        the mix the PrimeTime-style generate→evaluate→mutate loop needs to
        both localize a cliff and escape a plateau.
        """
        if self.size == 1:
            return self.lo
        roll = rng.random()
        if roll < 0.15:
            mutated = self.sample(rng)
        else:
            # Step size 1, 2, 4, ... grid units, bounded by the range; the
            # exponent is biased low so most moves are local.
            max_shift = max(1, (self.size - 1).bit_length() - 1)
            exponent = min(rng.randrange(max_shift), rng.randrange(max_shift))
            delta = self.step * (1 << exponent)
            mutated = self.clamp(value + rng.choice((-1, 1)) * delta)
        if mutated == value:
            # Landed on itself (resampled or clamped at a boundary): force
            # one grid step inward so a mutation is never a no-op.
            mutated = self.clamp(value - self.step if value >= self.hi else value + self.step)
        return mutated

    def split(self, parts: int) -> List["IntDimension"]:
        """``parts`` contiguous subranges covering the grid (last may be short)."""
        parts = max(1, min(parts, self.size))
        per = self.size // parts
        extra = self.size % parts
        out: List[IntDimension] = []
        start = self.lo
        for i in range(parts):
            count = per + (1 if i < extra else 0)
            end = start + (count - 1) * self.step
            out.append(IntDimension(start, end, self.step))
            start = end + self.step
        return out


@dataclass(frozen=True)
class SearchSpace:
    """Named integer dimensions (sorted iteration order — deterministic)."""

    dimensions: Tuple[Tuple[str, IntDimension], ...]

    @classmethod
    def of(cls, **dims: IntDimension) -> "SearchSpace":
        return cls(dimensions=tuple(sorted(dims.items())))

    def __iter__(self) -> Iterator[Tuple[str, IntDimension]]:
        return iter(self.dimensions)

    @property
    def grid_size(self) -> int:
        """How many points an exhaustive grid at step resolution would visit."""
        size = 1
        for _, dim in self.dimensions:
            size *= dim.size
        return size

    def sample(self, rng: random.Random) -> Candidate:
        return {name: dim.sample(rng) for name, dim in self.dimensions}

    def sample_distinct(
        self, rng: random.Random, count: int, seen: frozenset = frozenset()
    ) -> List[Candidate]:
        """Up to ``count`` distinct unseen candidates (seeded, best effort)."""
        out: List[Candidate] = []
        keys = set(seen)
        attempts = 0
        limit = max(32, count * 32)
        while len(out) < count and attempts < limit:
            attempts += 1
            candidate = self.sample(rng)
            key = candidate_key(candidate)
            if key in keys:
                continue
            keys.add(key)
            out.append(candidate)
        return out

    def mutate(self, candidate: Candidate, rng: random.Random) -> Candidate:
        """Perturb one (seeded-chosen) dimension of ``candidate``."""
        out = dict(candidate)
        name, dim = self.dimensions[rng.randrange(len(self.dimensions))]
        out[name] = dim.mutate(out[name], rng)
        return out

    def regions(self, count: int) -> List["SearchSpace"]:
        """Contiguous subspaces for bandit arms.

        The *widest* dimension (most grid points) is split into ``count``
        slices; the others are carried whole.  One-dimensional spaces —
        the interval and period searches — therefore get exactly the
        interval partition one would draw on the Figure 8 x-axis.
        """
        widest = max(self.dimensions, key=lambda item: item[1].size)[0]
        out: List[SearchSpace] = []
        for piece in dict(self.dimensions)[widest].split(count):
            dims = {name: dim for name, dim in self.dimensions}
            dims[widest] = piece
            out.append(SearchSpace.of(**dims))
        return out

    def describe(self) -> str:
        return ", ".join(
            f"{name}∈[{dim.lo}, {dim.hi}]/{dim.step}" for name, dim in self.dimensions
        )


def candidate_key(candidate: Candidate) -> str:
    """Canonical identity of a candidate (dedupe and seed derivation)."""
    return canonical_json(candidate)
