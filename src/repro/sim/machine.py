"""Machine assembly: config + hierarchy + timing + cores + physical memory."""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from ..cache.hierarchy import CacheHierarchy, Level, MemOpResult
from ..cache.replacement import ReplacementPolicy
from ..config import PlatformConfig, SKYLAKE, KABY_LAKE
from ..cpu.core import Core
from ..cpu.timing import TimingModel
from ..engine import CompiledTrace, OP_NAMES, compile_trace, resolve_backend
from ..engine import batch as _batch
from ..engine import soa as _soa
from ..errors import ConfigurationError, SimulationError
from ..faults import FaultPlan, TracePollution
from ..mem.allocator import AddressSpace, PageAllocator
from ..mem.layout import CacheSetMapping
from ..obs import MetricsRegistry, NULL_REGISTRY

#: One batched memory operation: (op name, core id, byte address).
TraceOp = Tuple[str, int, int]

_DRAM = Level.DRAM
_LLC = Level.LLC


@dataclass(frozen=True)
class MachineCheckpoint:
    """Compact snapshot of a :class:`Machine`'s mutable simulation state.

    Everything is flat tuples of primitives — no shared references into the
    machine — so one checkpoint can be restored any number of times and a
    restored machine is bit-identical to a cold machine that replayed the
    same prefix.  ``rng_state`` covers the timing model and the page
    allocator too: both draw from the machine's single ``rng``.  Metrics
    registries are deliberately *not* captured — they are observability,
    not simulation state, and restoring must not rewind counters the
    caller is accumulating across trials.
    """

    config_name: str
    seed: int
    clock: int
    rng_state: tuple
    cores: Tuple[Tuple[int, int, int, int], ...]
    allocator: tuple
    hierarchy: tuple
    pollution: Optional[tuple]

    def _material(self) -> bytes:
        # repr of nested tuples of ints/bools/None is deterministic across
        # processes (no hash-order containers anywhere in the state).
        return repr(
            (
                self.config_name,
                self.seed,
                self.clock,
                self.rng_state,
                self.cores,
                self.allocator,
                self.hierarchy,
                self.pollution,
            )
        ).encode()

    def digest(self) -> str:
        """Stable content hash, suitable for result-cache keys."""
        return hashlib.sha256(self._material()).hexdigest()

    @property
    def approx_bytes(self) -> int:
        """Serialized-size estimate, for the checkpoint byte metrics."""
        return len(self._material())


class Machine:
    """A simulated multi-core machine.

    The usual entry point of the library::

        machine = Machine.skylake(seed=1)
        attacker = machine.cores[0]
        space = machine.address_space("attacker")

    ``clock`` is the sequential-execution clock used when cores run without
    the discrete-event scheduler (single-threaded experiments).
    """

    def __init__(
        self,
        config: PlatformConfig,
        seed: int = 0,
        llc_policy_factory: Optional[Callable[[int], ReplacementPolicy]] = None,
        llc_mapping: Optional[CacheSetMapping] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        backend: Optional[str] = None,
    ):
        self.config = config
        #: Trace-execution backend preference for :meth:`run_trace`
        #: (``object``, ``soa``, or ``batch``); ``None`` reads the
        #: ``REPRO_ENGINE`` environment variable.  A machine-level
        #: preference of ``soa`` or ``batch`` silently falls back to the
        #: object engine when the machine's policies are unsupported; the
        #: per-call ``backend=`` argument of :meth:`run_trace` is strict
        #: instead.
        self.backend = resolve_backend(backend)
        #: Cached metric-counter handles for batch flushing (built lazily;
        #: the registry is fixed at construction, so handles never go stale).
        self._engine_counters = None
        #: Metrics sink for batch execution; the default null sink keeps the
        #: hot path at a single boolean check per operation (the <5% gate in
        #: ``benchmarks/test_engine_throughput.py`` covers the enabled case).
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: Root seed this machine was built with (sweep shards rebuild an
        #: identical machine from ``(config, seed)`` in worker processes).
        self.seed = seed
        self.rng = random.Random(seed)
        self.hierarchy = CacheHierarchy(
            config, llc_policy_factory=llc_policy_factory, llc_mapping=llc_mapping
        )
        self.timing = TimingModel(config.latency, config.noise, self.rng)
        self.cores: List[Core] = [Core(self, c) for c in range(config.cores)]
        self.allocator = PageAllocator(self.rng)
        self.clock = 0
        #: Deterministic cache-pollution injection for :meth:`run_trace`
        #: (``faults`` with ``pollution_probability > 0``); ``None`` — the
        #: default — keeps the batch path entirely fault-free.
        self.faults = faults
        self.pollution: Optional[TracePollution] = None
        if faults is not None and faults.injects_cache_faults:
            self.pollution = TracePollution(faults, seed, core=config.cores - 1)

    # -- constructors ------------------------------------------------------

    @classmethod
    def skylake(cls, seed: int = 0, **kwargs) -> "Machine":
        """The paper's Core i7-6700 test machine."""
        return cls(SKYLAKE, seed=seed, **kwargs)

    @classmethod
    def kaby_lake(cls, seed: int = 0, **kwargs) -> "Machine":
        """The paper's Core i7-7700K test machine."""
        return cls(KABY_LAKE, seed=seed, **kwargs)

    # -- memory ------------------------------------------------------------

    def address_space(self, name: str = "proc") -> AddressSpace:
        """A fresh process address space on this machine's physical memory."""
        return AddressSpace(self.allocator, name=name)

    def llc_eviction_set(
        self, space: AddressSpace, target: int, size: Optional[int] = None
    ) -> List[int]:
        """Ground-truth eviction set for ``target`` drawn from ``space``.

        The paper's threat model assumes both parties can construct eviction
        sets (Section IV-A), so channel experiments use this shortcut; the
        honest search lives in :mod:`repro.attacks.evset`.
        """
        if size is None:
            size = self.config.llc.ways + 1
        return space.congruent_lines(self.hierarchy.llc_mapping, target, size)

    def private_eviction_lines(
        self, space: AddressSpace, target: int, size: Optional[int] = None
    ) -> List[int]:
        """Lines that conflict with ``target`` in L1/L2 but not in the LLC.

        Used by the Section III experiments to evict a line from the private
        caches while leaving its LLC state untouched (Figure 4, Step 1).
        """
        if size is None:
            size = self.config.l1.ways + self.config.l2.ways + 1
        l1_map = self.hierarchy.l1_mapping
        l2_map = self.hierarchy.l2_mapping
        llc_map = self.hierarchy.llc_mapping
        found: List[int] = []
        for line in space.candidate_lines(offset=target % 4096 // 64 * 64):
            if line == target:
                continue
            if (
                l1_map.congruent(line, target)
                and l2_map.congruent(line, target)
                and not llc_map.congruent(line, target)
            ):
                found.append(line)
                if len(found) == size:
                    return found
        raise ConfigurationError(
            f"exhausted candidate lines searching for {size} private-conflict "
            f"lines for target {target:#x} (found {len(found)}): need lines "
            "congruent in L1 and L2 but not the LLC — the configured "
            "geometries may make that set empty"
        )

    # -- batch execution -----------------------------------------------------

    def _batch_counters(self) -> dict:
        """Metric-counter handles used by batch flushing, fetched once.

        Instrument handles are resolved through name formatting and a
        registry dict lookup; caching them per machine keeps enabled-metrics
        batches at one attribute read per flushed counter instead of
        re-resolving every name on every batch.
        """
        handles = self._engine_counters
        if handles is None:
            counter = self.metrics.counter
            handles = self._engine_counters = {
                "ops": {name: counter(f"engine.ops.{name}") for name in OP_NAMES},
                "served": {
                    name: counter(f"engine.served.{name}")
                    for name in ("L1", "L2", "LLC", "DRAM")
                },
                "pollution": counter("engine.faults.pollution"),
            }
        return handles

    def _run_trace_soa(self, ops, record: bool) -> "List[MemOpResult] | int":
        """The ``soa`` backend of :meth:`run_trace` (see there)."""
        pollution = self.pollution
        injected_before = pollution.injected if pollution is not None else 0
        if isinstance(ops, CompiledTrace) and pollution is None:
            compiled = ops
        else:
            # Pollution draws one RNG decision per original op, so the
            # polluted stream must be materialised into a fresh compile;
            # feeding a pre-compiled trace back through ``ops()`` keeps the
            # draw sequence identical to the object engine's.
            source = ops.ops() if isinstance(ops, CompiledTrace) else ops
            if pollution is not None:
                source = pollution.wrap(source)
            compiled = compile_trace(self, source)
        observe = self.metrics.enabled
        hierarchy = self.hierarchy
        if observe:
            l1_hits0 = sum(l.stats.hits for l in hierarchy.l1s)
            l2_hits0 = sum(l.stats.hits for l in hierarchy.l2s)
            llc_hits0 = hierarchy.llc.stats.hits
            llc_misses0 = hierarchy.llc.stats.misses
        results = _soa.execute(self, compiled, record)
        if observe:
            handles = self._batch_counters()
            op_handles = handles["ops"]
            for name, n in zip(OP_NAMES, compiled.op_counts):
                if n:
                    op_handles[name].inc(n)
            served_handles = handles["served"]
            served = (
                ("L1", sum(l.stats.hits for l in hierarchy.l1s) - l1_hits0),
                ("L2", sum(l.stats.hits for l in hierarchy.l2s) - l2_hits0),
                ("LLC", hierarchy.llc.stats.hits - llc_hits0),
                ("DRAM", hierarchy.llc.stats.misses - llc_misses0),
            )
            for name, n in served:
                if n:
                    served_handles[name].inc(n)
            if pollution is not None and pollution.injected != injected_before:
                handles["pollution"].inc(pollution.injected - injected_before)
        return results if record else compiled.length

    def _run_trace_batch(self, ops, record: bool) -> "List[MemOpResult] | int":
        """The ``batch`` backend of :meth:`run_trace`: a one-trial batch.

        Exists so ``REPRO_ENGINE=batch`` exercises the trial-batched
        engine (:mod:`repro.engine.batch`) across the whole test suite;
        multi-trial execution goes through
        :func:`repro.engine.run_trace_batch` directly.
        """
        result = _batch.run_trace_batch(self, [ops], record=record)
        result.apply(0)
        return result.results(0) if record else result.length(0)

    def run_trace(
        self,
        ops: "Iterable[TraceOp] | CompiledTrace",
        record: bool = False,
        backend: Optional[str] = None,
    ) -> "List[MemOpResult] | int":
        """Execute a batch of memory operations on the sequential clock.

        ``ops`` yields ``(op, core, addr)`` tuples with ``op`` one of
        ``load``, ``prefetchnta``, ``prefetcht0``, ``prefetcht1``,
        ``prefetcht2``, or ``clflush`` — or a pre-compiled
        :class:`~repro.engine.CompiledTrace`, which either backend replays
        without re-resolving addresses.  Counters, statistics, and the
        clock advance exactly as if each operation had been issued through
        ``machine.cores[core]`` individually; the batch form exists so
        experiments replaying long traces pay one Python call per *batch*
        instead of several per *operation*.

        ``backend`` selects the execution engine for this call (``object``,
        ``soa``, or ``batch``); the default is the machine's
        :attr:`backend` preference.  The ``soa`` engine
        (:mod:`repro.engine.soa`) executes the batch over flat
        struct-of-arrays planes with bit-identical results; ``batch``
        (:mod:`repro.engine.batch`) runs the trace as a one-trial batch of
        the trial-batched engine, again bit-identical.  An explicit
        ``backend="soa"`` / ``backend="batch"`` raises
        :class:`SimulationError` when the machine's policies are
        unsupported, while the machine-level preference falls back to the
        object engine.  Both compiled paths validate the whole trace at
        compile time, so a bad op raises *before* any state changes; the
        object path raises mid-batch after executing the valid prefix.

        Returns the per-op :class:`MemOpResult` list when ``record`` is
        true, else the number of operations executed (recording a
        multi-million-op trace would hold every result alive for no
        reason).

        With a fault plan carrying ``pollution_probability``, random
        interfering fills are interleaved into the batch (see
        :class:`repro.faults.TracePollution`); the injected loads execute —
        and are counted — like any other op.
        """
        engine = self.backend if backend is None else resolve_backend(backend)
        if engine == "soa":
            if _soa.supports(self):
                return self._run_trace_soa(ops, record)
            if backend is not None:
                raise SimulationError(
                    "backend='soa' requested but this machine's replacement "
                    "policies are not supported by the SoA engine"
                )
        elif engine == "batch":
            if _soa.supports(self):
                return self._run_trace_batch(ops, record)
            if backend is not None:
                raise SimulationError(
                    "backend='batch' requested but this machine's replacement "
                    "policies are not supported by the batch engine"
                )
        if isinstance(ops, CompiledTrace):
            ops = ops.ops()
        hierarchy = self.hierarchy
        cores = self.cores
        dispatch = {
            "load": hierarchy.load,
            "prefetchnta": hierarchy.prefetchnta,
            "prefetcht0": hierarchy.prefetcht0,
            "prefetcht1": hierarchy.prefetcht1,
            "prefetcht2": hierarchy.prefetcht1,
            "clflush": None,  # flush has its own accounting below
        }
        results: List[MemOpResult] = []
        clock = self.clock
        count = 0
        # Per-batch accumulation keeps instrumentation off the per-op path:
        # enabled runs pay one pre-seeded local-dict bump per op and flush
        # once at the end; served-by-level counts come from LevelStats
        # deltas around the batch, at zero per-op cost.  The default null
        # sink pays only this boolean.
        observe = self.metrics.enabled
        pollution = self.pollution
        injected_before = pollution.injected if pollution is not None else 0
        if pollution is not None:
            ops = pollution.wrap(ops)
        op_counts = dict.fromkeys(dispatch, 0)
        if observe:
            l1_hits0 = sum(l.stats.hits for l in hierarchy.l1s)
            l2_hits0 = sum(l.stats.hits for l in hierarchy.l2s)
            llc_hits0 = hierarchy.llc.stats.hits
            llc_misses0 = hierarchy.llc.stats.misses
        for op, core_id, addr in ops:
            try:
                handler = dispatch[op]
            except KeyError:
                self.clock = clock
                raise SimulationError(f"unknown trace op {op!r}") from None
            core = cores[core_id]
            if handler is None:
                core.flushes += 1
                result = hierarchy.clflush(addr, clock)
            else:
                core.memory_references += 1
                result = handler(core_id, addr, clock)
                level = result.level
                if level is _DRAM:
                    core.llc_references += 1
                    core.llc_misses += 1
                elif level is _LLC:
                    core.llc_references += 1
            if observe:
                op_counts[op] += 1
            clock += result.latency
            count += 1
            if record:
                results.append(result)
        self.clock = clock
        if observe:
            handles = self._batch_counters()
            op_handles = handles["ops"]
            for op, n in op_counts.items():
                if n:
                    op_handles[op].inc(n)
            served_handles = handles["served"]
            served = (
                ("L1", sum(l.stats.hits for l in hierarchy.l1s) - l1_hits0),
                ("L2", sum(l.stats.hits for l in hierarchy.l2s) - l2_hits0),
                ("LLC", hierarchy.llc.stats.hits - llc_hits0),
                ("DRAM", hierarchy.llc.stats.misses - llc_misses0),
            )
            for name, n in served:
                if n:
                    served_handles[name].inc(n)
            if pollution is not None and pollution.injected != injected_before:
                handles["pollution"].inc(pollution.injected - injected_before)
        return results if record else count

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> MachineCheckpoint:
        """Capture all mutable simulation state as a :class:`MachineCheckpoint`.

        Captures the clock, the RNG stream (shared by the timing model and
        the page allocator), per-core PMU counters, the allocated frame
        pool, every cache level (lines, policy metadata, stats), and — when
        a fault plan wired cache pollution — the pollution stream, so a
        warm-started trial draws the same faults as a cold one.
        """
        return MachineCheckpoint(
            config_name=self.config.name,
            seed=self.seed,
            clock=self.clock,
            rng_state=self.rng.getstate(),
            cores=tuple(
                (c.memory_references, c.flushes, c.llc_references, c.llc_misses)
                for c in self.cores
            ),
            allocator=self.allocator.capture(),
            hierarchy=self.hierarchy.capture(),
            pollution=None if self.pollution is None else self.pollution.capture(),
        )

    def restore(self, checkpoint: MachineCheckpoint) -> None:
        """Rewind this machine to a :meth:`checkpoint` taken on it.

        After restoring, execution replays bit-identically to a freshly
        built machine that ran the same prefix; restore is idempotent, so
        one checkpoint serves any number of trials.  The checkpoint must
        come from a machine with the same config and fault wiring.
        """
        if checkpoint.config_name != self.config.name or len(
            checkpoint.cores
        ) != len(self.cores):
            raise SimulationError(
                f"checkpoint is for {checkpoint.config_name!r} "
                f"({len(checkpoint.cores)} cores), machine is "
                f"{self.config.name!r} ({len(self.cores)} cores)"
            )
        if (checkpoint.pollution is None) != (self.pollution is None):
            raise SimulationError(
                "checkpoint and machine disagree on cache-fault wiring "
                "(one has TracePollution, the other does not)"
            )
        self.clock = checkpoint.clock
        self.rng.setstate(checkpoint.rng_state)
        for core, counters in zip(self.cores, checkpoint.cores):
            (
                core.memory_references,
                core.flushes,
                core.llc_references,
                core.llc_misses,
            ) = counters
        self.allocator.restore(checkpoint.allocator)
        self.hierarchy.restore(checkpoint.hierarchy)
        if self.pollution is not None:
            self.pollution.restore(checkpoint.pollution)

    # -- convenience ---------------------------------------------------------

    @property
    def llc_ways(self) -> int:
        return self.config.llc.ways

    def miss_threshold(self) -> int:
        """Noise-free hit/miss discrimination threshold (the paper's Th0)."""
        return self.timing.default_miss_threshold()

    def flush_lines(self, addrs) -> None:
        for addr in addrs:
            self.hierarchy.clflush(addr, self.clock)

    def reset_stats(self) -> None:
        self.hierarchy.reset_stats()
        for core in self.cores:
            core.reset_counters()

    def stats_report(self) -> str:
        """Human-readable access statistics for every cache level."""
        lines = [f"{self.config.name} @ {self.clock} cycles"]
        levels = [*self.hierarchy.l1s, *self.hierarchy.l2s, self.hierarchy.llc]
        header = f"{'level':<8} {'accesses':>9} {'hits':>9} {'misses':>9} {'hit rate':>9} {'evictions':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for level in levels:
            stats = level.stats
            lines.append(
                f"{level.name:<8} {stats.accesses:>9} {stats.hits:>9} "
                f"{stats.misses:>9} {stats.hit_rate:>9.2%} {stats.evictions:>10}"
            )
        refs = sum(core.memory_references for core in self.cores)
        flushes = sum(core.flushes for core in self.cores)
        lines.append(f"cores: {refs} memory references, {flushes} flushes")
        return "\n".join(lines)
