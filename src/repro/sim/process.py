"""Processes for the discrete-event scheduler.

A simulated process is a Python generator that *yields operation requests*
and receives each operation's outcome back from the scheduler::

    def receiver(proc: SimProcess):
        yield WaitUntil(slot_start)
        timed = yield TimedPrefetchNTA(dr)
        bit = 1 if timed.cycles > threshold else 0
        ...
        return bits

The scheduler executes the yielded operation at the process's local time on
the process's core, advances local time by the operation's latency, and
sends the result back into the generator.  Processes on different cores thus
interleave in global-timestamp order against the shared LLC — the simulated
equivalent of two pinned processes racing on real silicon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional


class Op:
    """Base class for yieldable operation requests."""

    __slots__ = ()


@dataclass(frozen=True)
class Load(Op):
    """Demand load; result sent back is a :class:`MemOpResult`."""

    addr: int


@dataclass(frozen=True)
class TimedLoad(Op):
    """RDTSCP-wrapped load; result sent back is a :class:`TimedResult`."""

    addr: int


@dataclass(frozen=True)
class PrefetchNTA(Op):
    """PREFETCHNTA; result is a :class:`MemOpResult`.

    Non-blocking, as on real hardware: the instruction retires at issue
    cost while the fill completes in the background (the line's
    ``busy_until`` covers the in-flight window).  Use
    :class:`TimedPrefetchNTA` for the serialized, measured variant that
    waits for completion.
    """

    addr: int


@dataclass(frozen=True)
class TimedPrefetchNTA(Op):
    """RDTSCP-wrapped PREFETCHNTA; result is a :class:`TimedResult`."""

    addr: int


@dataclass(frozen=True)
class PrefetchT0(Op):
    addr: int


@dataclass(frozen=True)
class Clflush(Op):
    addr: int


@dataclass(frozen=True)
class StreamClflush(Op):
    """A CLFLUSH issued in an independent stream (overlapped with others).

    Same cache effect as :class:`Clflush`, charged ``clflush / stream_mlp``
    cycles like a streamed load.
    """

    addr: int


@dataclass(frozen=True)
class WaitUntil(Op):
    """Spin on RDTSC until the given absolute cycle (no-op if in the past).

    The scheduler sends back the process's arrival time, so programs can
    tell whether they hit the deadline or arrived late.
    """

    time: int


@dataclass(frozen=True)
class Sleep(Op):
    """Burn the given number of cycles (models computation)."""

    cycles: int


@dataclass(frozen=True)
class StreamLoad(Op):
    """A load issued in an independent (non-chased) access stream.

    Semantically identical to :class:`Load`, but charged only
    ``latency / stream_mlp`` cycles: out-of-order cores overlap independent
    misses, which is why the paper's Listing 1 finishes 192 references in
    ~1900 cycles.
    """

    addr: int


@dataclass(frozen=True)
class ReadTSC(Op):
    """Read the time-stamp counter; result sent back is the current cycle.

    Costs half a measurement overhead (one serialized RDTSCP), so bracketing
    a sequence with two ReadTSCs models the paper's timed access sequences.
    """


Program = Generator[Op, Any, Any]


class SimProcess:
    """A schedulable process: a program generator pinned to a core."""

    def __init__(self, name: str, core_id: int, program: Program, start_time: int = 0):
        self.name = name
        self.core_id = core_id
        self.program = program
        self.time = start_time
        self.finished = False
        #: Return value of the program generator once finished.
        self.result: Optional[Any] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else f"t={self.time}"
        return f"SimProcess({self.name!r}, core={self.core_id}, {state})"
