"""Discrete-event scheduler interleaving processes against shared caches.

The scheduler always runs the process with the smallest local clock, executes
its next yielded operation atomically at that timestamp, and advances the
process's clock by the operation's latency.  Shared-LLC interactions between
processes therefore occur in global time order, which is what makes the
cross-core races of the paper (sender vs. receiver prefetches, victim vs.
attacker accesses) observable in simulation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional

from ..errors import SimulationError
from .machine import Machine
from .process import (
    Clflush,
    Load,
    Op,
    PrefetchNTA,
    PrefetchT0,
    Program,
    ReadTSC,
    SimProcess,
    Sleep,
    StreamClflush,
    StreamLoad,
    TimedLoad,
    TimedPrefetchNTA,
    WaitUntil,
)


class Scheduler:
    """Runs :class:`SimProcess` programs on a shared :class:`Machine`."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.processes: List[SimProcess] = []
        self._counter = itertools.count()

    def spawn(
        self, name: str, core_id: int, program: Program, start_time: int = 0
    ) -> SimProcess:
        """Register a process; cores may host at most one process at a time."""
        if not 0 <= core_id < len(self.machine.cores):
            raise SimulationError(f"core {core_id} out of range for {name!r}")
        for proc in self.processes:
            if proc.core_id == core_id and not proc.finished:
                raise SimulationError(
                    f"core {core_id} already busy with {proc.name!r}"
                )
        proc = SimProcess(name, core_id, program, start_time)
        self.processes.append(proc)
        return proc

    # ------------------------------------------------------------------

    def _execute(self, proc: SimProcess, op: Op) -> Any:
        """Execute ``op`` at ``proc.time``; advance the clock; return result."""
        core = self.machine.cores[proc.core_id]
        now = proc.time
        if isinstance(op, Load):
            result = core.load(op.addr, at=now)
            proc.time += result.latency
            return result
        if isinstance(op, TimedLoad):
            timed = core.timed_load(op.addr, at=now)
            proc.time += timed.cycles
            return timed
        if isinstance(op, PrefetchNTA):
            result = core.prefetchnta(op.addr, at=now)
            # Non-blocking: the hint retires immediately; the fill is in
            # flight until the line's busy_until.
            proc.time += self.machine.config.latency.prefetch_issue
            return result
        if isinstance(op, TimedPrefetchNTA):
            timed = core.timed_prefetchnta(op.addr, at=now)
            proc.time += timed.cycles
            return timed
        if isinstance(op, PrefetchT0):
            result = core.prefetcht0(op.addr, at=now)
            proc.time += result.latency
            return result
        if isinstance(op, Clflush):
            result = core.clflush(op.addr, at=now)
            proc.time += result.latency
            return result
        if isinstance(op, StreamClflush):
            result = core.clflush(op.addr, at=now)
            mlp = max(1, self.machine.config.latency.stream_mlp)
            proc.time += max(1, result.latency // mlp)
            return result
        if isinstance(op, WaitUntil):
            proc.time = max(proc.time, op.time)
            # Returning the arrival time gives programs a free lateness
            # check (they learn whether the wait actually waited).
            return proc.time
        if isinstance(op, StreamLoad):
            result = core.load(op.addr, at=now)
            mlp = max(1, self.machine.config.latency.stream_mlp)
            proc.time += max(1, result.latency // mlp)
            return result
        if isinstance(op, ReadTSC):
            stamp = proc.time
            proc.time += self.machine.config.latency.measure_overhead // 2
            return stamp
        if isinstance(op, Sleep):
            if op.cycles < 0:
                raise SimulationError(f"negative sleep from {proc.name!r}")
            proc.time += op.cycles
            return None
        raise SimulationError(f"{proc.name!r} yielded unknown op {op!r}")

    def run(self, until: Optional[int] = None) -> None:
        """Run until every process finishes (or the time horizon passes).

        ``until`` bounds simulated time: a process whose clock passes the
        horizon is suspended permanently (its generator is closed).
        """
        heap: List[tuple] = []
        for proc in self.processes:
            if not proc.finished:
                heapq.heappush(heap, (proc.time, next(self._counter), proc, None))
        while heap:
            time, _, proc, send_value = heapq.heappop(heap)
            if until is not None and time > until:
                proc.program.close()
                proc.finished = True
                continue
            try:
                op = proc.program.send(send_value)
            except StopIteration as stop:
                proc.finished = True
                proc.result = stop.value
                continue
            result = self._execute(proc, op)
            heapq.heappush(heap, (proc.time, next(self._counter), proc, result))
        # Keep the sequential clock monotone with the simulated world so a
        # later non-scheduled experiment on the same machine starts "after".
        latest = max((p.time for p in self.processes), default=0)
        self.machine.clock = max(self.machine.clock, latest)

    def run_all(self, until: Optional[int] = None) -> List[Any]:
        """Run and return each process's program return value, in spawn order."""
        self.run(until=until)
        return [proc.result for proc in self.processes]
