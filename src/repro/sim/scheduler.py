"""Discrete-event scheduler interleaving processes against shared caches.

The scheduler always runs the process with the smallest local clock, executes
its next yielded operation atomically at that timestamp, and advances the
process's clock by the operation's latency.  Shared-LLC interactions between
processes therefore occur in global time order, which is what makes the
cross-core races of the paper (sender vs. receiver prefetches, victim vs.
attacker accesses) observable in simulation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional

from ..errors import SimulationError
from .machine import Machine
from .process import (
    Clflush,
    Load,
    Op,
    PrefetchNTA,
    PrefetchT0,
    Program,
    ReadTSC,
    SimProcess,
    Sleep,
    StreamClflush,
    StreamLoad,
    TimedLoad,
    TimedPrefetchNTA,
    WaitUntil,
)


class Scheduler:
    """Runs :class:`SimProcess` programs on a shared :class:`Machine`."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.processes: List[SimProcess] = []
        # core id -> the process most recently spawned there; consulted (and
        # lazily cleaned) by spawn so registering a process is O(1) instead
        # of a scan over every process ever spawned on this scheduler.
        self._core_owner: Dict[int, SimProcess] = {}
        self._counter = itertools.count()

    def spawn(
        self, name: str, core_id: int, program: Program, start_time: int = 0
    ) -> SimProcess:
        """Register a process; cores may host at most one process at a time."""
        if not 0 <= core_id < len(self.machine.cores):
            raise SimulationError(f"core {core_id} out of range for {name!r}")
        owner = self._core_owner.get(core_id)
        if owner is not None and not owner.finished:
            raise SimulationError(
                f"core {core_id} already busy with {owner.name!r}"
            )
        proc = SimProcess(name, core_id, program, start_time)
        self.processes.append(proc)
        self._core_owner[core_id] = proc
        return proc

    # ------------------------------------------------------------------
    # Op execution: one dict lookup dispatches each yielded op.  Exact-type
    # dispatch is equivalent to the former isinstance ladder because the op
    # types have no subclass relationships among them.

    def _exec_load(self, proc: SimProcess, op: Load) -> Any:
        result = self.machine.cores[proc.core_id].load(op.addr, at=proc.time)
        proc.time += result.latency
        return result

    def _exec_timed_load(self, proc: SimProcess, op: TimedLoad) -> Any:
        timed = self.machine.cores[proc.core_id].timed_load(op.addr, at=proc.time)
        proc.time += timed.cycles
        return timed

    def _exec_prefetchnta(self, proc: SimProcess, op: PrefetchNTA) -> Any:
        result = self.machine.cores[proc.core_id].prefetchnta(op.addr, at=proc.time)
        # Non-blocking: the hint retires immediately; the fill is in
        # flight until the line's busy_until.
        proc.time += self.machine.config.latency.prefetch_issue
        return result

    def _exec_timed_prefetchnta(self, proc: SimProcess, op: TimedPrefetchNTA) -> Any:
        timed = self.machine.cores[proc.core_id].timed_prefetchnta(
            op.addr, at=proc.time
        )
        proc.time += timed.cycles
        return timed

    def _exec_prefetcht0(self, proc: SimProcess, op: PrefetchT0) -> Any:
        result = self.machine.cores[proc.core_id].prefetcht0(op.addr, at=proc.time)
        proc.time += result.latency
        return result

    def _exec_clflush(self, proc: SimProcess, op: Clflush) -> Any:
        result = self.machine.cores[proc.core_id].clflush(op.addr, at=proc.time)
        proc.time += result.latency
        return result

    def _exec_stream_clflush(self, proc: SimProcess, op: StreamClflush) -> Any:
        result = self.machine.cores[proc.core_id].clflush(op.addr, at=proc.time)
        mlp = max(1, self.machine.config.latency.stream_mlp)
        proc.time += max(1, result.latency // mlp)
        return result

    def _exec_wait_until(self, proc: SimProcess, op: WaitUntil) -> Any:
        proc.time = max(proc.time, op.time)
        # Returning the arrival time gives programs a free lateness
        # check (they learn whether the wait actually waited).
        return proc.time

    def _exec_stream_load(self, proc: SimProcess, op: StreamLoad) -> Any:
        result = self.machine.cores[proc.core_id].load(op.addr, at=proc.time)
        mlp = max(1, self.machine.config.latency.stream_mlp)
        proc.time += max(1, result.latency // mlp)
        return result

    def _exec_read_tsc(self, proc: SimProcess, op: ReadTSC) -> Any:
        stamp = proc.time
        proc.time += self.machine.config.latency.measure_overhead // 2
        return stamp

    def _exec_sleep(self, proc: SimProcess, op: Sleep) -> Any:
        if op.cycles < 0:
            raise SimulationError(f"negative sleep from {proc.name!r}")
        proc.time += op.cycles
        return None

    _DISPATCH = {
        Load: _exec_load,
        TimedLoad: _exec_timed_load,
        PrefetchNTA: _exec_prefetchnta,
        TimedPrefetchNTA: _exec_timed_prefetchnta,
        PrefetchT0: _exec_prefetcht0,
        Clflush: _exec_clflush,
        StreamClflush: _exec_stream_clflush,
        WaitUntil: _exec_wait_until,
        StreamLoad: _exec_stream_load,
        ReadTSC: _exec_read_tsc,
        Sleep: _exec_sleep,
    }

    def _execute(self, proc: SimProcess, op: Op) -> Any:
        """Execute ``op`` at ``proc.time``; advance the clock; return result."""
        handler = self._DISPATCH.get(type(op))
        if handler is None:
            raise SimulationError(f"{proc.name!r} yielded unknown op {op!r}")
        return handler(self, proc, op)

    def run(self, until: Optional[int] = None) -> None:
        """Run until every process finishes (or the time horizon passes).

        ``until`` bounds simulated time: a process whose clock passes the
        horizon is suspended permanently (its generator is closed).
        """
        execute = self._execute
        heap: List[tuple] = []
        for proc in self.processes:
            if not proc.finished:
                heapq.heappush(heap, (proc.time, next(self._counter), proc, None))
        while heap:
            time, _, proc, send_value = heapq.heappop(heap)
            if until is not None and time > until:
                proc.program.close()
                proc.finished = True
                continue
            try:
                op = proc.program.send(send_value)
            except StopIteration as stop:
                proc.finished = True
                proc.result = stop.value
                continue
            result = execute(proc, op)
            heapq.heappush(heap, (proc.time, next(self._counter), proc, result))
        # Keep the sequential clock monotone with the simulated world so a
        # later non-scheduled experiment on the same machine starts "after".
        latest = max((p.time for p in self.processes), default=0)
        self.machine.clock = max(self.machine.clock, latest)

    def run_all(self, until: Optional[int] = None) -> List[Any]:
        """Run and return each process's program return value, in spawn order."""
        self.run(until=until)
        return [proc.result for proc in self.processes]
