"""Simulation layer: machine assembly and the discrete-event scheduler."""

from .machine import Machine, MachineCheckpoint
from .process import (
    SimProcess,
    Load,
    TimedLoad,
    PrefetchNTA,
    TimedPrefetchNTA,
    PrefetchT0,
    Clflush,
    WaitUntil,
    Sleep,
    ReadTSC,
    StreamLoad,
    StreamClflush,
)
from .scheduler import Scheduler

__all__ = [
    "Machine",
    "MachineCheckpoint",
    "SimProcess",
    "Scheduler",
    "Load",
    "TimedLoad",
    "PrefetchNTA",
    "TimedPrefetchNTA",
    "PrefetchT0",
    "Clflush",
    "WaitUntil",
    "Sleep",
    "ReadTSC",
    "StreamLoad",
    "StreamClflush",
]
