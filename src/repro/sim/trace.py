"""Operation tracing for scheduler runs.

Attach a :class:`TraceRecorder` to a scheduler to capture every memory
operation that touches a watched LLC set, with timestamps, process names,
and a rendered before/after set state — the raw material for understanding
why an attack run misbehaved::

    recorder = TraceRecorder(machine, watch=[dr], watcher=set_watcher)
    recorder.attach(scheduler)
    scheduler.run()
    for event in recorder.events:
        print(event)

Tracing is implemented by wrapping the scheduler's execute hook, so it
composes with any program and costs nothing when not attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..analysis.setviz import SetWatcher
from ..errors import SimulationError
from .machine import Machine
from .scheduler import Scheduler


@dataclass(frozen=True)
class TraceEvent:
    """One traced operation."""

    time: int
    process: str
    op: str
    target: str
    state_after: str

    def __str__(self) -> str:
        return (
            f"{self.time:>12} {self.process:<14} {self.op:<18} "
            f"{self.target:<6} {self.state_after}"
        )


class TraceRecorder:
    """Records operations touching the watched LLC set(s)."""

    def __init__(
        self,
        machine: Machine,
        watch: Sequence[int],
        watcher: Optional[SetWatcher] = None,
        max_events: int = 100_000,
    ):
        if not watch:
            raise SimulationError("watch needs at least one address")
        self.machine = machine
        self.watcher = watcher or SetWatcher()
        self.max_events = max_events
        self._watch_keys = {
            machine.hierarchy.llc_mapping.index(addr).flat for addr in watch
        }
        self._reference = watch[0]
        self.events: List[TraceEvent] = []
        self._attached: Optional[Scheduler] = None
        self._original: Optional[Callable] = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, scheduler: Scheduler) -> "TraceRecorder":
        if self._attached is not None:
            raise SimulationError("recorder is already attached")
        self._attached = scheduler
        self._original = scheduler._execute
        recorder = self

        def traced_execute(proc, op):
            result = recorder._original(proc, op)
            recorder._record(proc, op)
            return result

        scheduler._execute = traced_execute
        return self

    def detach(self) -> None:
        if self._attached is None:
            return
        self._attached._execute = self._original
        self._attached = None
        self._original = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- recording -----------------------------------------------------------

    def _record(self, proc, op) -> None:
        addr = getattr(op, "addr", None)
        if addr is None:
            return
        mapping = self.machine.hierarchy.llc_mapping
        if mapping.index(addr).flat not in self._watch_keys:
            return
        if len(self.events) >= self.max_events:
            return
        target_set = self.machine.hierarchy.llc.set_for(addr)
        self.events.append(
            TraceEvent(
                time=proc.time,
                process=proc.name,
                op=type(op).__name__,
                target=self.watcher.name_of(addr >> 6 << 6),
                state_after=self.watcher.render(target_set),
            )
        )

    # -- queries ---------------------------------------------------------------

    def by_process(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.process == name]

    def between(self, start: int, end: int) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.time < end]

    def dump(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)
