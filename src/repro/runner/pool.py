"""Shard execution: serial or process-parallel, with identical output.

:func:`run_shards` is the one entry point every sweep goes through.  It
guarantees:

* **Stable merge order** — results come back in shard order regardless of
  ``jobs``, so a parallel sweep is bit-identical to a serial one.
* **Pure workers** — a worker is a top-level function of one
  :class:`~repro.runner.shard.Shard` returning a JSON-compatible dict.  It
  must derive everything from the shard (workers run in forked processes
  where closure state would silently diverge).
* **Transparent caching** — with a :class:`~repro.runner.cache.ResultCache`,
  known points are served from disk and only the misses are computed (and
  then stored), in either execution mode.
* **Accounted execution** — per-shard wall time, pool utilization, and
  cache hit/miss/corrupt counts land in the run's metrics registry and
  (optionally) an :class:`~repro.obs.trace.EventTrace`, so sweep summaries
  and ``--trace FILE`` cost nothing to support here.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..obs import EventTrace, MetricsRegistry, NULL_TRACE, get_registry
from .cache import ResultCache
from .shard import Shard

Worker = Callable[[Shard], Dict[str, Any]]

#: Shard wall-time histogram buckets (seconds).
_SHARD_SECONDS_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


def _cache_key(cache: ResultCache, worker: Worker, tag: Optional[str], shard: Shard) -> str:
    return cache.key(
        worker=f"{worker.__module__}.{worker.__qualname__}",
        tag=tag,
        seed=shard.seed,
        params=shard.params,
    )


def _timed_call(worker: Worker, shard: Shard) -> Tuple[Dict[str, Any], float]:
    """Run ``worker`` on ``shard``; top level so it pickles to pool workers."""
    start = time.perf_counter()
    result = worker(shard)
    return result, time.perf_counter() - start


def run_shards(
    worker: Worker,
    shards: Sequence[Shard],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_tag: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[EventTrace] = None,
) -> List[Dict[str, Any]]:
    """Run ``worker`` over ``shards``; results merged in shard order.

    ``jobs <= 1`` runs inline; ``jobs > 1`` fans the uncached shards out to
    a ``ProcessPoolExecutor``.  ``cache_tag`` names the sweep family in
    cache keys (bump it when a worker's *output format* changes without a
    rename).  ``metrics`` defaults to the process registry (the null sink
    unless one is installed); ``trace`` records per-shard events.
    """
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    registry = metrics if metrics is not None else get_registry()
    trace = trace if trace is not None else NULL_TRACE
    wall_start = time.perf_counter()
    shards = list(shards)
    results: List[Optional[Dict[str, Any]]] = [None] * len(shards)

    pending: List[Shard] = []
    keys: Dict[int, str] = {}
    cache_counts_before = (
        (cache.hits, cache.misses, cache.corrupt) if cache is not None else (0, 0, 0)
    )
    if cache is not None:
        for slot, shard in enumerate(shards):
            key = keys[slot] = _cache_key(cache, worker, cache_tag, shard)
            hit = cache.get(key)
            if hit is not None:
                results[slot] = hit
                trace.emit("runner.cache.hit", shard=shard.index, key=key)
            else:
                pending.append(shard)
                trace.emit("runner.cache.miss", shard=shard.index, key=key)
    else:
        pending = shards

    slot_of = {shard.index: slot for slot, shard in enumerate(shards)}
    busy_seconds = 0.0
    workers_used = min(jobs, len(pending)) if jobs > 1 else (1 if pending else 0)
    if pending:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=workers_used) as pool:
                computed = list(pool.map(partial(_timed_call, worker), pending))
        else:
            computed = [_timed_call(worker, shard) for shard in pending]
        shard_seconds = registry.histogram("runner.shard.seconds", _SHARD_SECONDS_BUCKETS)
        for shard, (result, elapsed) in zip(pending, computed):
            slot = slot_of[shard.index]
            results[slot] = result
            if cache is not None:
                cache.put(keys[slot], result)
            busy_seconds += elapsed
            shard_seconds.observe(elapsed)
            trace.emit("runner.shard", shard=shard.index, seconds=elapsed)

    registry.counter("runner.shards.total").inc(len(shards))
    registry.counter("runner.shards.computed").inc(len(pending))
    registry.counter("runner.shards.cached").inc(len(shards) - len(pending))
    if cache is not None:
        registry.counter("runner.cache.hits").inc(cache.hits - cache_counts_before[0])
        registry.counter("runner.cache.misses").inc(cache.misses - cache_counts_before[1])
        registry.counter("runner.cache.corrupt").inc(cache.corrupt - cache_counts_before[2])
    wall_seconds = time.perf_counter() - wall_start
    registry.gauge("runner.pool.jobs").set(max(workers_used, 1))
    if pending and wall_seconds > 0:
        registry.gauge("runner.pool.utilization").set(
            busy_seconds / (wall_seconds * max(workers_used, 1))
        )
    trace.emit(
        "runner.sweep",
        shards=len(shards),
        computed=len(pending),
        cached=len(shards) - len(pending),
        jobs=max(workers_used, 1),
        wall_seconds=wall_seconds,
        busy_seconds=busy_seconds,
    )
    return results  # type: ignore[return-value]
