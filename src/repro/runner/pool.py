"""Shard execution: serial or process-parallel, with identical output.

:func:`run_shards` is the one entry point every sweep goes through.  It
guarantees:

* **Stable merge order** — results come back in shard order regardless of
  ``jobs``, so a parallel sweep is bit-identical to a serial one.
* **Pure workers** — a worker is a top-level function of one
  :class:`~repro.runner.shard.Shard` returning a JSON-compatible dict.  It
  must derive everything from the shard (workers run in forked processes
  where closure state would silently diverge).
* **Transparent caching** — with a :class:`~repro.runner.cache.ResultCache`,
  known points are served from disk and only the misses are computed (and
  then stored), in either execution mode.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ReproError
from .cache import ResultCache
from .shard import Shard

Worker = Callable[[Shard], Dict[str, Any]]


def _cache_key(cache: ResultCache, worker: Worker, tag: Optional[str], shard: Shard) -> str:
    return cache.key(
        worker=f"{worker.__module__}.{worker.__qualname__}",
        tag=tag,
        seed=shard.seed,
        params=shard.params,
    )


def run_shards(
    worker: Worker,
    shards: Sequence[Shard],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_tag: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Run ``worker`` over ``shards``; results merged in shard order.

    ``jobs <= 1`` runs inline; ``jobs > 1`` fans the uncached shards out to
    a ``ProcessPoolExecutor``.  ``cache_tag`` names the sweep family in
    cache keys (bump it when a worker's *output format* changes without a
    rename).
    """
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    shards = list(shards)
    results: List[Optional[Dict[str, Any]]] = [None] * len(shards)

    pending: List[Shard] = []
    keys: Dict[int, str] = {}
    if cache is not None:
        for slot, shard in enumerate(shards):
            key = keys[slot] = _cache_key(cache, worker, cache_tag, shard)
            hit = cache.get(key)
            if hit is not None:
                results[slot] = hit
            else:
                pending.append(shard)
    else:
        pending = shards

    slot_of = {shard.index: slot for slot, shard in enumerate(shards)}
    if pending:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                computed = list(pool.map(worker, pending))
        else:
            computed = [worker(shard) for shard in pending]
        for shard, result in zip(pending, computed):
            slot = slot_of[shard.index]
            results[slot] = result
            if cache is not None:
                cache.put(keys[slot], result)
    return results  # type: ignore[return-value]
