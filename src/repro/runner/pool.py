"""Shard execution: serial or process-parallel, with identical output.

:func:`run_shards` is the one entry point every sweep goes through.  It
guarantees:

* **Stable merge order** — results come back in shard order regardless of
  ``jobs``, so a parallel sweep is bit-identical to a serial one.  Shard
  indices must be unique; a duplicate is rejected up front rather than
  silently misattributing one shard's result to another's slot.
* **Pure workers** — a worker is a top-level function of one
  :class:`~repro.runner.shard.Shard` returning a JSON-compatible dict.  It
  must derive everything from the shard (workers run in forked processes
  where closure state would silently diverge).
* **Transparent caching** — with a :class:`~repro.runner.cache.ResultCache`,
  known points are served from disk and only the misses are computed (and
  then stored), in either execution mode.  Only successful results are
  cached, and a shard that needed retries is cached exactly once.
* **Graceful degradation** — with ``retries`` and/or a
  :class:`~repro.faults.FaultPlan`, each shard gets a bounded retry budget
  with deterministic exponential backoff, and a shard that exhausts it
  yields an *error record* (see :func:`is_error_record`) in its merge slot
  instead of aborting the whole sweep.  Injected faults fire before the
  worker runs, so a recoverable chaos run merges bit-identically to a
  fault-free run.
* **Accounted execution** — per-shard wall time, pool utilization, retry
  and failure counts, and cache hit/miss/corrupt counts land in the run's
  metrics registry (``runner.retries`` / ``runner.failures`` among them)
  and (optionally) an :class:`~repro.obs.trace.EventTrace`, so sweep
  summaries and ``--trace FILE`` cost nothing to support here.
* **Durable history** — with a :class:`~repro.store.CampaignStore`
  (explicit ``store=``, the process default, or ``$REPRO_STORE``), the
  merged run is recorded — shard params, results, cache keys, accounting,
  and a metrics snapshot — as one campaign run, fail-soft (see
  :mod:`repro.store.ingest`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..faults import FaultPlan, ShardFaultInjector
from ..obs import EventTrace, MetricsRegistry, NULL_TRACE, get_registry
from .cache import ResultCache
from .runtime import resolve_runtime
from .shard import Shard

Worker = Callable[[Shard], Dict[str, Any]]

#: Shard wall-time histogram buckets (seconds).
_SHARD_SECONDS_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)

#: Key marking a merged slot as a shard failure rather than a result.
SHARD_ERROR_KEY = "__shard_error__"

#: Ceiling on one retry's backoff sleep, whatever the base and attempt.
BACKOFF_CAP_SECONDS = 5.0

#: One worker attempt's outcome: (result, error record, seconds, attempts).
_Outcome = Tuple[Optional[Dict[str, Any]], Optional[Dict[str, Any]], float, int]


def is_error_record(result: Any) -> bool:
    """Whether a merged slot holds a shard-failure record instead of a result."""
    return isinstance(result, dict) and SHARD_ERROR_KEY in result


def backoff_seconds(
    base: float, attempt: int, cap: float = BACKOFF_CAP_SECONDS
) -> float:
    """Deterministic exponential backoff before retry ``attempt`` (1-based).

    ``base * 2**(attempt-1)``, capped at ``cap`` (default
    :data:`BACKOFF_CAP_SECONDS`) so the delay never grows unboundedly with
    the attempt count — a retrying shard stalls its pool slot for at most
    ``cap`` seconds per attempt.  Callers holding scarcer slots (e.g. the
    sweep service's dispatchers) may pass a tighter cap.  No jitter: the
    schedule is part of the reproducible contract, and sweep shards never
    contend for a shared resource that would need decorrelating.
    """
    if base <= 0 or attempt <= 0:
        return 0.0
    return min(base * (2 ** (attempt - 1)), cap)


def _cache_key(cache: ResultCache, worker: Worker, tag: Optional[str], shard: Shard) -> str:
    """Content key for one shard's result.

    Workers may customise their identity with two optional attributes:
    ``cache_identity`` (a string naming the computation — required for
    callables without a useful ``__qualname__``, e.g. class instances) and
    ``cache_components(shard)`` (extra key components, e.g. the warm-start
    checkpoint digest, merged into the key).
    """
    identity = getattr(worker, "cache_identity", None)
    if identity is None:
        identity = f"{worker.__module__}.{worker.__qualname__}"
    components: Dict[str, Any] = {
        "worker": identity,
        "tag": tag,
        "seed": shard.seed,
        "params": shard.params,
    }
    extra = getattr(worker, "cache_components", None)
    if extra is not None:
        components.update(extra(shard))
    return cache.key(**components)


def _timed_call(worker: Worker, shard: Shard) -> _Outcome:
    """Run ``worker`` once; top level so it pickles to pool workers."""
    start = time.perf_counter()
    result = worker(shard)
    return result, None, time.perf_counter() - start, 1


def _attempt_shard(
    worker: Worker,
    faults: Optional[FaultPlan],
    retries: int,
    backoff_base: float,
    backoff_cap: float,
    shard: Shard,
) -> _Outcome:
    """Run ``worker`` with fault injection and bounded retry (pickles to pools).

    Fault decisions key on ``(shard.index, attempt)``, so they are identical
    in any process at any ``jobs`` value; the worker itself is only ever run
    clean, which keeps recovered results bit-identical to fault-free ones.
    """
    injector = ShardFaultInjector(faults) if faults is not None else None
    start = time.perf_counter()
    failure: Optional[Dict[str, Any]] = None
    for attempt in range(retries + 1):
        if attempt:
            delay = backoff_seconds(backoff_base, attempt, backoff_cap)
            if delay:
                time.sleep(delay)
        try:
            if injector is not None:
                injector.check(shard.index, attempt)
            result = worker(shard)
        except Exception as error:
            failure = {
                "shard": shard.index,
                "error": type(error).__name__,
                "message": str(error),
                "attempts": attempt + 1,
            }
            continue
        return result, None, time.perf_counter() - start, attempt + 1
    return None, failure, time.perf_counter() - start, retries + 1


def run_shards(
    worker: Worker,
    shards: Sequence[Shard],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_tag: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[EventTrace] = None,
    faults: Optional[FaultPlan] = None,
    retries: int = 0,
    backoff_base: float = 0.0,
    backoff_cap: float = BACKOFF_CAP_SECONDS,
    on_error: Optional[str] = None,
    store=None,
    campaign: Optional[str] = None,
    runtime=None,
    _ingest: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Run ``worker`` over ``shards``; results merged in shard order.

    ``jobs <= 1`` runs inline; ``jobs > 1`` fans the uncached shards out to
    a ``ProcessPoolExecutor``.  ``cache_tag`` names the sweep family in
    cache keys (bump it when a worker's *output format* changes without a
    rename).  ``metrics`` defaults to the process registry (the null sink
    unless one is installed); ``trace`` records per-shard events.

    ``faults`` injects deterministic crashes/timeouts per (shard, attempt);
    ``retries`` bounds how many times a failing shard is re-attempted, with
    ``backoff_base``-seconds exponential backoff between attempts, each
    delay clamped to ``backoff_cap`` seconds (default
    :data:`BACKOFF_CAP_SECONDS`).
    ``on_error`` selects what an exhausted shard does: ``"record"`` leaves
    an error record in its merge slot, ``"raise"`` aborts the sweep.  The
    default is ``"record"`` whenever faults or retries are engaged and the
    legacy ``"raise"`` otherwise.

    ``store`` selects the campaign store the merged run is recorded into
    (None resolves the process default / ``$REPRO_STORE``;
    :data:`repro.store.DISABLED` suppresses recording); ``campaign`` names
    the run's campaign (default: the cache tag minus its version suffix,
    else the worker's identity).  ``_ingest`` is internal: wrapping
    executors (warm start, trial batch) pass their executor name, prefix
    digests, and batch width through it so a delegated sweep is recorded
    exactly once, with the outermost executor's identity.

    ``runtime`` selects the execution runtime for the parallel path: an
    explicit :class:`~repro.runner.runtime.Runtime` reuses its persistent
    pool, :data:`~repro.runner.runtime.FRESH` forces an ephemeral per-call
    pool, and None resolves the process default / ``$REPRO_RUNTIME`` (see
    :mod:`repro.runner.runtime`).  The choice never changes output — only
    how worker processes are provisioned.
    """
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries}")
    if backoff_base < 0:
        raise ReproError(f"backoff_base must be >= 0, got {backoff_base}")
    if backoff_cap < 0:
        raise ReproError(f"backoff_cap must be >= 0, got {backoff_cap}")
    if on_error is None:
        on_error = "record" if (faults is not None or retries > 0) else "raise"
    if on_error not in ("record", "raise"):
        raise ReproError(f"on_error must be 'record' or 'raise', got {on_error!r}")
    registry = metrics if metrics is not None else get_registry()
    trace = trace if trace is not None else NULL_TRACE
    wall_start = time.perf_counter()
    shards = list(shards)
    results: List[Optional[Dict[str, Any]]] = [None] * len(shards)

    slot_of: Dict[int, int] = {}
    for slot, shard in enumerate(shards):
        duplicate = slot_of.get(shard.index)
        if duplicate is not None:
            raise ReproError(
                f"duplicate shard index {shard.index} (positions {duplicate} "
                f"and {slot}): indices must be unique for a stable merge"
            )
        slot_of[shard.index] = slot

    pending: List[Shard] = []
    keys: Dict[int, str] = {}
    cache_counts_before = (
        (cache.hits, cache.misses, cache.corrupt, cache.evicted)
        if cache is not None
        else (0, 0, 0, 0)
    )
    if cache is not None:
        for slot, shard in enumerate(shards):
            key = keys[slot] = _cache_key(cache, worker, cache_tag, shard)
            hit = cache.get(key)
            if hit is not None:
                results[slot] = hit
                trace.emit("runner.cache.hit", shard=shard.index, key=key)
            else:
                pending.append(shard)
                trace.emit("runner.cache.miss", shard=shard.index, key=key)
    else:
        pending = shards

    busy_seconds = 0.0
    retried_attempts = 0
    failed_shards = 0
    workers_used = min(jobs, len(pending)) if jobs > 1 else (1 if pending else 0)
    if pending:
        if faults is None and retries == 0 and on_error == "raise":
            # Legacy fast path: worker exceptions propagate unwrapped.
            call = partial(_timed_call, worker)
        else:
            call = partial(
                _attempt_shard, worker, faults, retries, backoff_base, backoff_cap
            )
        # A single pending shard (or a fully cached sweep, which never
        # reaches here) is not worth a worker process: run it inline.
        # Workers are pure functions of the shard, so output is identical.
        if jobs > 1 and len(pending) > 1:
            rt = resolve_runtime(runtime)
            if rt is not None:
                computed = rt.map(
                    call, pending, workers_used, metrics=registry, trace=trace
                )
            else:
                with ProcessPoolExecutor(max_workers=workers_used) as pool:
                    computed = list(pool.map(call, pending))
        else:
            computed = [call(shard) for shard in pending]
        shard_seconds = registry.histogram("runner.shard.seconds", _SHARD_SECONDS_BUCKETS)
        for shard, (result, failure, elapsed, attempts) in zip(pending, computed):
            slot = slot_of[shard.index]
            if attempts > 1:
                retried_attempts += attempts - 1
                trace.emit(
                    "runner.shard.retried",
                    shard=shard.index,
                    retries=attempts - 1,
                    recovered=failure is None,
                )
            if failure is not None:
                if on_error == "raise":
                    raise ReproError(
                        f"shard {shard.index} failed after {attempts} "
                        f"attempt(s): {failure['error']}: {failure['message']}"
                    )
                failed_shards += 1
                results[slot] = {SHARD_ERROR_KEY: failure}
                trace.emit(
                    "runner.shard.failed",
                    shard=shard.index,
                    attempts=attempts,
                    error=failure["error"],
                )
            else:
                results[slot] = result
                if cache is not None:
                    cache.put(keys[slot], result)
                trace.emit("runner.shard", shard=shard.index, seconds=elapsed)
            busy_seconds += elapsed
            shard_seconds.observe(elapsed)

    registry.counter("runner.shards.total").inc(len(shards))
    registry.counter("runner.shards.computed").inc(len(pending))
    registry.counter("runner.shards.cached").inc(len(shards) - len(pending))
    # Always materialized (inc 0) so ``stats --json`` shows the retry layer
    # even on fault-free runs.
    registry.counter("runner.retries").inc(retried_attempts)
    registry.counter("runner.failures").inc(failed_shards)
    if cache is not None:
        registry.counter("runner.cache.hits").inc(cache.hits - cache_counts_before[0])
        registry.counter("runner.cache.misses").inc(cache.misses - cache_counts_before[1])
        registry.counter("runner.cache.corrupt").inc(cache.corrupt - cache_counts_before[2])
        registry.counter("runner.cache.evicted").inc(cache.evicted - cache_counts_before[3])
    wall_seconds = time.perf_counter() - wall_start
    registry.gauge("runner.pool.jobs").set(max(workers_used, 1))
    if pending and wall_seconds > 0:
        registry.gauge("runner.pool.utilization").set(
            busy_seconds / (wall_seconds * max(workers_used, 1))
        )
    trace.emit(
        "runner.sweep",
        shards=len(shards),
        computed=len(pending),
        cached=len(shards) - len(pending),
        retries=retried_attempts,
        failures=failed_shards,
        jobs=max(workers_used, 1),
        wall_seconds=wall_seconds,
        busy_seconds=busy_seconds,
    )

    from ..store.ingest import campaign_name, record_sweep

    ingest = _ingest or {}
    identity = getattr(worker, "cache_identity", None)
    if identity is None:
        identity = f"{worker.__module__}.{worker.__qualname__}"
    record_sweep(
        store,
        campaign if campaign is not None else campaign_name(cache_tag, identity),
        shards,
        results,
        executor=ingest.get("executor", "pool"),
        batch_size=ingest.get("batch_size", 1),
        digests=ingest.get("digests"),
        jobs=max(workers_used, 1),
        shards_computed=len(pending),
        shards_cached=len(shards) - len(pending),
        retries=retried_attempts,
        failures=failed_shards,
        wall_seconds=wall_seconds,
        registry=registry,
        trace=trace,
        cache_keys=(
            [keys.get(slot) for slot in range(len(shards))] if cache is not None else None
        ),
    )
    return results  # type: ignore[return-value]
