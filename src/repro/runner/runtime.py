"""Persistent worker runtime: reusable pools, shm transfer, chunked submission.

Every executor in :mod:`repro.runner` used to build a fresh
``ProcessPoolExecutor`` per call, re-pickle its worker (fault plan,
checkpoint digests, warm-start plan) once per task, and throw away any
worker-side state — the warm-start prefix memo chief among it — when the
pool died.  For a single grid sweep that fixed cost disappears into the
simulation time; for the adaptive drivers in :mod:`repro.search`, which
issue one small shard batch per round for tens of rounds, it *is* the
bottleneck.

A :class:`Runtime` keeps the expensive parts alive across
``run_shards``/``run_warm_shards``/``run_batch_shards`` calls:

* **Reusable pool** — worker processes spawn lazily on the first parallel
  batch and survive until :meth:`Runtime.close`.  Per-worker state (the
  warm-start FIFO memo, attached payload segments, interned traces)
  persists with them, so a 40-round search pays each prefix build at most
  once per worker instead of once per round.  An *epoch* generation guard
  (:meth:`Runtime.bump_epoch`) clears that state on demand so nothing can
  leak between incompatible sweeps.
* **Shared-memory transfer** — the chunk worker (and, from the warm-start
  executor, the parent-built :class:`~repro.sim.machine.MachineCheckpoint`
  table) ships once per *content* through
  :mod:`multiprocessing.shared_memory` instead of pickling per task.
  Payloads are pickled with protocol 5: ``bytes``/NumPy planes travel as
  out-of-band buffers laid out in the segment, and workers reconstruct
  them as **zero-copy read-only views** over the mapped memory.  Large
  result blocks come back the same way (see
  :data:`RESULT_SHM_MIN_BYTES`).  Segments are content-deduplicated per
  runtime, refcount-tracked in the parent, and unlinked at close.
* **Chunked submission** — pending shards group into per-worker chunks
  sized by a cost model fed from the run's ``runner.shard.seconds``
  histogram (target :data:`TARGET_CHUNK_SECONDS` of work per message),
  amortizing IPC and futures overhead.  Chunks are submitted and merged
  in shard order, and every shard still runs through the same
  fault/retry call keyed on ``(index, attempt)``, so output is
  bit-identical to the fresh-pool path at any ``jobs`` value.

Resolution mirrors the campaign store's convention — explicit ``runtime=``
argument first, then the process default
(:func:`set_default_runtime` / :func:`use_default_runtime`, which the
CLI's ``--runtime persistent`` installs), then the ``REPRO_RUNTIME``
environment variable (``persistent`` enables a process-global runtime,
closed at exit; ``fresh`` or unset keeps the legacy per-call pool).  Pass
:data:`FRESH` to force an ephemeral pool for one call even when a default
runtime is installed.
"""

from __future__ import annotations

import atexit
import hashlib
import math
import os
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..obs import EventTrace, MetricsRegistry, NULL_TRACE, get_registry

#: Environment variable selecting the process default (see module docstring).
RUNTIME_ENV = "REPRO_RUNTIME"

#: Sentinel forcing an ephemeral per-call pool despite an installed default.
FRESH = "fresh"

#: Ideal seconds of shard work per submitted chunk.  Below this the
#: futures/IPC overhead dominates; far above it load balancing suffers.
TARGET_CHUNK_SECONDS = 0.25

#: Pickled calls smaller than this ride along inline with each chunk —
#: a shared-memory segment would cost more than it saves.
PAYLOAD_MIN_BYTES = 4096

#: Chunk results whose pickle exceeds this return through a worker-created
#: shared-memory segment instead of the result pipe.
RESULT_SHM_MIN_BYTES = 256 * 1024

#: Per-process cap on attached payload segments (workers evict FIFO).
_MAX_ATTACHED_PAYLOADS = 16

#: Buffer alignment inside payload segments (keeps NumPy views aligned).
_ALIGN = 64


@dataclass(frozen=True)
class PayloadRef:
    """A handle to one shared-memory payload (picklable, tiny).

    ``frame`` is the byte length of the pickle frame at offset 0;
    ``buffers`` holds ``(offset, length)`` spans of the protocol-5
    out-of-band buffers laid out after it.
    """

    name: str
    frame: int
    buffers: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class _ShmResult:
    """Marker returned by a worker whose chunk result travels via shm."""

    name: str
    frame: int


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _share_resource_tracker() -> None:
    """Start the multiprocessing resource tracker before any worker forks.

    ``SharedMemory`` registers every open — attaches included — with the
    resource tracker (bpo-38119; ``track=False`` only exists from 3.13).
    Registrations from different processes collapse into one entry only
    when they reach the *same* tracker, so the tracker must exist before
    pool workers fork and inherit its pipe; otherwise each worker spawns
    a private tracker that later warns about (and re-unlinks) segments
    the owning runtime already cleaned up.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass  # tracking is a safety net, not a correctness dependency


def _encode_payload(obj: Any) -> Tuple[bytes, List[pickle.PickleBuffer]]:
    """Protocol-5 pickle with out-of-band buffers (NumPy planes, bytes)."""
    buffers: List[pickle.PickleBuffer] = []
    frame = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    return frame, buffers


def _decode_payload(frame, buffers: Sequence[Any]) -> Any:
    return pickle.loads(frame, buffers=list(buffers))


# ---------------------------------------------------------------------------
# Worker-side globals (live in pool worker processes)
# ---------------------------------------------------------------------------

#: segment name -> (SharedMemory, decoded object), FIFO-bounded.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, Any]] = {}

#: Evicted attachments whose views were still live at close time.  Kept
#: referenced so ``SharedMemory.__del__`` cannot fire (and raise) at an
#: arbitrary GC point; re-closed opportunistically once the views die.
_ZOMBIES: List[shared_memory.SharedMemory] = []

#: (runtime token -> last seen epoch); a bump clears persistent state.
_EPOCHS: Dict[int, int] = {}


def _reap_zombies() -> None:
    for shm in _ZOMBIES[:]:
        try:
            shm.close()
        except BufferError:
            continue  # a view still references the map
        _ZOMBIES.remove(shm)


def _drop_attached(name: str) -> None:
    entry = _ATTACHED.pop(name, None)
    if entry is None:
        return
    try:
        entry[0].close()
    except BufferError:  # a view still references the map; retry later
        _ZOMBIES.append(entry[0])


def load_payload(ref: PayloadRef) -> Any:
    """Attach (or reuse) ``ref``'s segment and return its decoded object.

    The decoded object is cached per process keyed by segment name, so a
    payload shipped to W workers over C chunks is unpickled once per
    worker, not once per task.  Out-of-band buffers decode to read-only
    views over the mapped segment — zero copies, and a worker that tried
    to mutate shipped state would fault instead of silently diverging.
    """
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    _reap_zombies()
    shm = shared_memory.SharedMemory(name=ref.name)
    views = [
        shm.buf[offset : offset + length].toreadonly()
        for offset, length in ref.buffers
    ]
    obj = _decode_payload(shm.buf[: ref.frame], views)
    while len(_ATTACHED) >= _MAX_ATTACHED_PAYLOADS:
        _drop_attached(next(iter(_ATTACHED)))
    _ATTACHED[ref.name] = (shm, obj)
    return obj


def clear_attached_payloads() -> None:
    """Drop this process's attached payload cache (epoch guard / tests)."""
    for name in list(_ATTACHED):
        _drop_attached(name)
    _reap_zombies()


def _guard_epoch(token: int, epoch: int) -> None:
    """Reset per-process persistent state when the runtime's epoch moved.

    Warm-start memo keys embed checkpoint digests, so stale entries can
    never produce wrong results — but a long-lived worker could hoard
    state from sweeps that will never run again.  The epoch guard makes
    invalidation explicit: one bump and every worker starts clean.
    """
    seen = _EPOCHS.get(token)
    if seen == epoch:
        return
    if seen is not None:
        from .warmstart import clear_warm_states

        clear_warm_states()
        clear_attached_payloads()
    _EPOCHS[token] = epoch


_RESULT_COUNTER = 0


def _ship_result(outcomes: list) -> Union[list, _ShmResult]:
    """Return ``outcomes`` inline, or via a shm segment when large."""
    frame = pickle.dumps(outcomes, protocol=5)
    if len(frame) < RESULT_SHM_MIN_BYTES:
        return outcomes
    global _RESULT_COUNTER
    _RESULT_COUNTER += 1
    name = f"repro_rt_res_{os.getpid()}_{_RESULT_COUNTER}"
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=len(frame))
    except OSError:
        return outcomes  # fail-soft: shm exhaustion costs pipe bandwidth only
    shm.buf[: len(frame)] = frame
    shm.close()
    return _ShmResult(name=name, frame=len(frame))


def _run_chunk(
    payload: Union[PayloadRef, Callable],
    shards: Sequence[Any],
    token: int,
    epoch: int,
) -> Union[list, _ShmResult]:
    """Execute one chunk of shards in a worker (top level: pickles)."""
    _guard_epoch(token, epoch)
    call = load_payload(payload) if isinstance(payload, PayloadRef) else payload
    return _ship_result([call(shard) for shard in shards])


# ---------------------------------------------------------------------------
# The runtime
# ---------------------------------------------------------------------------


class Runtime:
    """A persistent execution runtime behind the executor API.

    Use as a context manager, or pair with an explicit :meth:`close`::

        with Runtime() as rt:
            rows_a = run_shards(worker, shards_a, jobs=4, runtime=rt)
            rows_b = run_shards(worker, shards_b, jobs=4, runtime=rt)  # reuses pool

    Nothing spawns until the first batch that actually needs workers, so a
    runtime costs nothing on fully cached or serial runs.
    """

    _TOKENS = iter(range(1, 1 << 62))

    def __init__(self, name: Optional[str] = None):
        self.name = name or "runtime"
        self.token = next(Runtime._TOKENS)
        self.epoch = 0
        self.closed = False
        #: Guards pool (re)creation and payload-segment creation: one
        #: runtime may serve concurrent sweeps from several threads (the
        #: job service), and both paths are check-then-create.
        self._lock = threading.Lock()
        self._executor = None
        self._executor_workers = 0
        #: payload content digest -> PayloadRef (per-runtime dedup).
        self._payload_refs: Dict[str, PayloadRef] = {}
        #: segment name -> SharedMemory owned by this runtime.
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._worker_pids: List[int] = []
        # Accounting (mirrored into the per-run metrics registry by map()).
        self.pools = 0
        self.workers_spawned = 0
        self.reuses = 0
        self.maps = 0
        self.chunks = 0
        self.shm_bytes = 0
        self.shm_result_bytes = 0

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise ReproError(f"runtime {self.name!r} is closed")

    def bump_epoch(self) -> int:
        """Invalidate all persistent worker-side state (memo, payloads)."""
        self.epoch += 1
        return self.epoch

    def worker_pids(self) -> List[int]:
        """PIDs of every worker process this runtime ever spawned."""
        return list(self._worker_pids)

    def close(self) -> None:
        """Shut the pool down and unlink every owned shm segment.

        Idempotent.  After close, no worker process and no ``/dev/shm``
        segment created by this runtime survives (workers that still hold
        attachments release them as they exit with the pool).
        """
        if self.closed:
            return
        self.closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = 0
        for shm in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except (OSError, BufferError):
                pass  # already gone / still viewed; unlink is best-effort
        self._segments.clear()
        self._payload_refs.clear()

    # -- pool -------------------------------------------------------------

    def _ensure_executor_locked(self, jobs: int, registry: MetricsRegistry,
                                trace: EventTrace, ProcessPoolExecutor):
        # Caller holds self._lock (see map()).
        if self._executor is not None and self._executor_workers < jobs:
            # A bigger batch arrived: respawn wider.  Shrinking never
            # respawns — idle workers are what persistence pays for.
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._executor is None:
            _share_resource_tracker()  # must predate the fork (see helper)
            self._executor = ProcessPoolExecutor(max_workers=jobs)
            self._executor_workers = jobs
            self.pools += 1
            self.workers_spawned += jobs
            registry.counter("runner.runtime.pools").inc()
            registry.counter("runner.runtime.spawns").inc(jobs)
            trace.emit("runner.runtime.spawn", runtime=self.name, workers=jobs)
        else:
            self.reuses += 1
            registry.counter("runner.runtime.reuses").inc()
            trace.emit(
                "runner.runtime.reuse",
                runtime=self.name,
                workers=self._executor_workers,
            )
        # ProcessPoolExecutor spawns lazily on submit; snapshot pids after
        # the first real use (see map()).
        return self._executor

    def _snapshot_pids(self) -> None:
        if self._executor is not None and self._executor._processes:
            for pid in self._executor._processes:
                if pid not in self._worker_pids:
                    self._worker_pids.append(pid)

    # -- shared-memory payloads ------------------------------------------

    def put_payload(self, obj: Any,
                    registry: Optional[MetricsRegistry] = None) -> PayloadRef:
        """Ship ``obj`` into a shared segment once; content-deduplicated.

        Identical payloads (same pickle bytes) across calls — e.g. the
        same warm-start worker every search round — map to one segment,
        so workers keep their decoded cache entry warm across rounds.
        """
        self._check_open()
        frame, buffers = _encode_payload(obj)
        raws = [buf.raw() for buf in buffers]
        digest = hashlib.sha256(frame)
        for raw in raws:
            digest.update(raw)
        key = digest.hexdigest()
        with self._lock:
            return self._put_payload_locked(key, frame, raws, registry)

    def _put_payload_locked(self, key, frame, raws, registry) -> PayloadRef:
        ref = self._payload_refs.get(key)
        if ref is not None:
            return ref
        offset = _aligned(len(frame))
        spans = []
        for raw in raws:
            spans.append((offset, raw.nbytes))
            offset = _aligned(offset + raw.nbytes)
        name = f"repro_rt_{os.getpid()}_{self.token}_{key[:12]}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, offset))
        shm.buf[: len(frame)] = frame
        for (start, length), raw in zip(spans, raws):
            shm.buf[start : start + length] = raw.cast("B")
        ref = PayloadRef(name=name, frame=len(frame), buffers=tuple(spans))
        self._segments[name] = shm
        self._payload_refs[key] = ref
        self.shm_bytes += offset
        if registry is not None:
            registry.counter("runner.runtime.shm.segments").inc()
            registry.counter("runner.runtime.shm.bytes").inc(offset)
        return ref

    def _collect(self, outcome: Union[list, _ShmResult],
                 registry: MetricsRegistry) -> list:
        """Decode one chunk's result, draining its shm segment if any."""
        if not isinstance(outcome, _ShmResult):
            return outcome
        shm = shared_memory.SharedMemory(name=outcome.name)
        try:
            frame = bytes(shm.buf[: outcome.frame])  # copy out before unlink
        finally:
            shm.close()
            try:
                shm.unlink()
            except OSError:
                pass
        self.shm_result_bytes += outcome.frame
        registry.counter("runner.runtime.shm.result_bytes").inc(outcome.frame)
        return pickle.loads(frame)

    # -- chunked submission ----------------------------------------------

    def _chunk_size(self, n: int, workers: int,
                    registry: MetricsRegistry) -> int:
        """Shards per chunk, from the run's shard wall-time history.

        Aim for :data:`TARGET_CHUNK_SECONDS` of work per message; with no
        history yet, fall back to ~4 chunks per worker.  Always at least
        one chunk per worker so the pool never idles on a skewed split.
        """
        from .pool import _SHARD_SECONDS_BUCKETS

        per_worker = max(1, math.ceil(n / workers))
        hist = registry.histogram("runner.shard.seconds", _SHARD_SECONDS_BUCKETS)
        if hist.count and hist.mean > 0:
            size = max(1, int(TARGET_CHUNK_SECONDS / hist.mean))
        else:
            size = max(1, math.ceil(n / (workers * 4)))
        return min(size, per_worker)

    def map(
        self,
        call: Callable[[Any], Any],
        items: Sequence[Any],
        jobs: int,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ) -> List[Any]:
        """``[call(x) for x in items]`` on the persistent pool, in order.

        The drop-in replacement for ``ProcessPoolExecutor.map`` in
        :func:`~repro.runner.pool.run_shards`: results come back in item
        order, and a worker exception propagates on collection exactly
        like ``pool.map`` — the retry/fault layer lives inside ``call``
        and is untouched.
        """
        self._check_open()
        registry = metrics if metrics is not None else get_registry()
        trace = trace if trace is not None else NULL_TRACE
        items = list(items)
        if not items:
            return []
        workers = max(1, min(jobs, len(items)))
        payload: Union[PayloadRef, Callable] = call
        frame, buffers = _encode_payload(call)
        if len(frame) + sum(b.raw().nbytes for b in buffers) >= PAYLOAD_MIN_BYTES:
            payload = self.put_payload(call, registry=registry)
        chunk = self._chunk_size(len(items), workers, registry)
        from concurrent.futures import ProcessPoolExecutor

        # Acquire the pool and submit under one lock hold: a concurrent
        # map() asking for more workers respawns the pool, and a submit
        # loop interleaved with that shutdown would raise.  Collection
        # stays outside the lock — a respawn waits for pending futures.
        with self._lock:
            executor = self._ensure_executor_locked(
                workers, registry, trace, ProcessPoolExecutor
            )
            futures = [
                executor.submit(
                    _run_chunk, payload, items[i : i + chunk],
                    self.token, self.epoch,
                )
                for i in range(0, len(items), chunk)
            ]
        self.maps += 1
        self.chunks += len(futures)
        registry.counter("runner.runtime.maps").inc()
        registry.counter("runner.runtime.chunks").inc(len(futures))
        registry.gauge("runner.runtime.chunk_size").set(chunk)
        results: List[Any] = []
        for future in futures:
            results.extend(self._collect(future.result(), registry))
        self._snapshot_pids()
        return results


# ---------------------------------------------------------------------------
# Resolution: explicit > process default > environment
# ---------------------------------------------------------------------------

_default_runtime: Union[Runtime, None, str] = None
_default_installed = False
_env_runtime: Optional[Runtime] = None


def set_default_runtime(
    runtime: Union[Runtime, None, str]
) -> Union[Runtime, None, str]:
    """Install ``runtime`` as the process default; returns the previous one.

    ``None`` uninstalls (restoring env-var resolution); :data:`FRESH`
    installs a default that forces ephemeral pools even when
    ``$REPRO_RUNTIME=persistent`` — the CLI's ``--runtime fresh``.
    The runtime's lifecycle stays with the caller: installing never
    spawns, uninstalling never closes.
    """
    global _default_runtime, _default_installed
    previous = _default_runtime if _default_installed else None
    _default_runtime = runtime
    _default_installed = runtime is not None
    return previous


@contextmanager
def use_default_runtime(
    runtime: Union[Runtime, None, str]
) -> Iterator[Union[Runtime, None, str]]:
    """Scoped :func:`set_default_runtime` (the CLI wraps commands in this)."""
    previous = set_default_runtime(runtime)
    try:
        yield runtime
    finally:
        set_default_runtime(previous)


def _close_env_runtime() -> None:
    global _env_runtime
    if _env_runtime is not None:
        _env_runtime.close()
        _env_runtime = None


def runtime_configured() -> bool:
    """Whether any runtime choice is in force (default installed or env set).

    Lets owners of a natural runtime scope — e.g. one search run — create
    their own persistent runtime *only* when the user has not already made
    a choice, including the explicit choice of :data:`FRESH`.
    """
    return _default_installed or bool(os.environ.get(RUNTIME_ENV, ""))


def get_default_runtime() -> Optional[Runtime]:
    """The process-default runtime, or None for per-call pools."""
    global _env_runtime
    if _default_installed:
        if _default_runtime is FRESH or isinstance(_default_runtime, str):
            return None
        return _default_runtime
    env = os.environ.get(RUNTIME_ENV, "")
    if not env or env.lower() == FRESH:
        return None
    if env.lower() != "persistent":
        raise ReproError(
            f"unknown runtime {env!r} from the {RUNTIME_ENV} environment "
            "variable; expected 'persistent' or 'fresh'"
        )
    if _env_runtime is None or _env_runtime.closed:
        _env_runtime = Runtime(name="env")
        atexit.register(_close_env_runtime)
    return _env_runtime


def resolve_runtime(
    runtime: Union[Runtime, None, str]
) -> Optional[Runtime]:
    """An executor's effective runtime: explicit, default, env, or none."""
    if isinstance(runtime, str):
        if runtime != FRESH:
            raise ReproError(
                f"unknown runtime {runtime!r}; pass a Runtime, None, or 'fresh'"
            )
        return None
    if runtime is not None:
        if runtime.closed:
            raise ReproError(f"runtime {runtime.name!r} is closed")
        return runtime
    return get_default_runtime()
