"""Deterministic sharding of independent sweep points.

A *sweep* is a list of independent points (seed x noise level x interval x
platform x ...).  Each point becomes a :class:`Shard`: a picklable work
unit carrying its parameters and a per-shard seed derived from the sweep's
root seed.  Shards never share state, so they can run in any order on any
process — the pool merges results back in shard order, which is what makes
parallel output bit-identical to serial output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import ReproError

#: derive_seed returns non-negative seeds below this (63 bits keeps them
#: inside one machine word for ``random.Random`` while staying positive).
SEED_SPACE = 1 << 63


def _canonical(value: Any) -> Any:
    """JSON-compatible canonical form of seed-derivation components."""
    import dataclasses
    import enum

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        # Strictly enums, mirroring results_io._encode: arbitrary objects
        # that happen to expose ``.value`` must not silently canonicalize.
        return _canonical(value.value)
    raise ReproError(
        f"cannot canonicalize {type(value).__name__} for seed/key derivation"
    )


def canonical_json(value: Any) -> str:
    """Stable JSON encoding used for seed derivation and cache keys."""
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


def derive_seed(root_seed: int, *components: Any) -> int:
    """A deterministic per-shard seed from the root seed plus components.

    SHA-256 over the canonical JSON of ``[root_seed, *components]``,
    truncated to 63 bits.  Stable across processes, platforms, and Python
    versions (unlike ``hash()``), so a shard computes the same seed whether
    it runs serially, in a worker process, or in a resumed run.
    """
    material = canonical_json([root_seed, *components])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % SEED_SPACE


@dataclass(frozen=True)
class Shard:
    """One independent sweep point: parameters plus a derived seed.

    ``params`` is the worker's entire input; it must be picklable (it
    crosses the process boundary) and canonicalizable (it feeds the result
    cache key).  ``seed`` is free for workers that need per-point
    randomness beyond the seeds already embedded in ``params``.
    """

    index: int
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)


def make_shards(root_seed: int, param_sets: Sequence[Mapping[str, Any]]) -> List[Shard]:
    """Shards for ``param_sets``, in order, with derived per-shard seeds."""
    return [
        Shard(index=i, seed=derive_seed(root_seed, i), params=dict(params))
        for i, params in enumerate(param_sets)
    ]


def make_content_shards(
    root_seed: int,
    param_sets: Sequence[Mapping[str, Any]],
    seed_keys: Optional[Sequence[str]] = None,
) -> List[Shard]:
    """Shards whose seeds derive from their *content*, not their position.

    Grid sweeps seed shards by index (:func:`make_shards`) — fine when the
    grid is fixed up front.  Adaptive drivers (:mod:`repro.search`)
    re-batch the same point into different rounds and positions, so a
    positional seed would make one candidate's result depend on *when* the
    search tried it.  Here ``seed = derive_seed(root_seed, content)`` where
    *content* is the params restricted to ``seed_keys`` (default: every
    param): the same candidate gets the same seed — and therefore the same
    simulated result — wherever it appears.  ``seed_keys`` lets callers
    exclude bookkeeping params (e.g. a search round number) that must not
    perturb the physics.  Indices stay positional; they only order the
    merge within one batch.
    """
    shards = []
    for i, params in enumerate(param_sets):
        params = dict(params)
        if seed_keys is None:
            content: Dict[str, Any] = params
        else:
            try:
                content = {key: params[key] for key in seed_keys}
            except KeyError as missing:
                raise ReproError(
                    f"param set {i} is missing seed key {missing}"
                ) from None
        shards.append(
            Shard(index=i, seed=derive_seed(root_seed, content), params=params)
        )
    return shards
