"""Content-addressed on-disk cache for sweep-point results.

Every cache entry is keyed by the SHA-256 of everything that determines a
sweep point's output: the engine version, the worker's identity, the full
platform configuration, and the point's parameters (seeds included).  A
re-run of ``python -m repro table2`` therefore recomputes nothing, while
*any* change to the platform config, the sweep grid, or the engine's
numeric behaviour misses cleanly.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json``.  The cache is
fail-soft: unreadable/unwritable storage degrades to recomputation, never
to an error — results must not depend on filesystem health.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..cache import ENGINE_VERSION
from .shard import canonical_json

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-leakyway``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-leakyway"


class ResultCache:
    """A content-addressed store of JSON sweep-point results.

    ``max_bytes`` bounds the cache's total entry size: when a
    :meth:`put` pushes the total over the budget, the oldest entries (by
    file modification time) are evicted until it fits again, so a
    long-lived service node cannot fill its disk.  Evictions are counted
    in :attr:`evicted` and surface as the ``runner.cache.evicted``
    metric.  ``max_bytes=None`` (the default) keeps the historical
    unbounded behaviour.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_bytes: Optional[int] = None,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root) if root is not None else default_cache_root()
        self.max_bytes = max_bytes
        #: Fulfilled / recomputed lookups, for tests and ``--jobs`` tuning.
        self.hits = 0
        self.misses = 0
        #: Entries that existed on disk but failed to parse (also misses).
        self.corrupt = 0
        #: Payloads refused by :meth:`put` (non-finite floats — not JSON).
        self.rejected = 0
        #: Entries removed to keep the cache under ``max_bytes``.
        self.evicted = 0
        # Running total of entry bytes, scanned lazily on the first
        # budgeted put (other writers may share the directory, so the
        # enforcement scan below re-walks the tree before evicting).
        self._total_bytes: Optional[int] = None

    def key(self, **components: Any) -> str:
        """SHA-256 hex key over the canonical JSON of ``components``.

        The engine version participates automatically so numeric-behaviour
        changes to the simulator invalidate every prior entry.
        """
        material = canonical_json({"engine": ENGINE_VERSION, **components})
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None (counts hit/miss).

        An entry that exists but fails to parse (a torn or truncated write)
        is evicted best-effort rather than left to be re-parsed — and
        re-missed — on every subsequent run.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass  # fail-soft: the recompute will overwrite it anyway
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (best effort, atomic rename).

        Entries must be *standard* JSON: a payload with a NaN/Infinity
        float would serialize to the non-JSON ``NaN``/``Infinity`` tokens,
        which strict parsers (and sqlite's JSON functions) reject.  Such a
        payload is simply not stored — the sweep keeps its in-memory value
        and the point recomputes next run — rather than poisoning the
        cache with an entry other readers cannot parse.
        """
        path = self._path(key)
        try:
            text = json.dumps(payload, sort_keys=True, allow_nan=False)
        except ValueError:
            self.rejected += 1
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(text)
            tmp.replace(path)
        except OSError:
            return  # fail-soft: a broken cache only costs recomputation
        if self.max_bytes is not None:
            if self._total_bytes is None:
                self._total_bytes = self._scan_bytes()
            else:
                self._total_bytes += len(text)
            if self._total_bytes > self.max_bytes:
                self._evict(keep=path)

    def _scan_bytes(self) -> int:
        total = 0
        try:
            for entry in self.root.glob("*/*.json"):
                try:
                    total += entry.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return total

    def _evict(self, keep: Optional[Path] = None) -> None:
        """Drop oldest entries (by mtime) until the budget holds.

        Re-walks the directory so entries written by other processes
        sharing the cache root are accounted for and evictable too.
        ``keep`` protects the entry just written — evicting the newest
        result to make room for itself would defeat the put.
        """
        entries = []
        try:
            for entry in self.root.glob("*/*.json"):
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, entry))
        except OSError:
            return
        total = sum(size for _, size, _ in entries)
        entries.sort()  # oldest first
        for _, size, entry in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and entry == keep:
                continue
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            self.evicted += 1
        self._total_bytes = total

    def clear(self) -> int:
        """Delete every entry; returns the number removed (test helper).

        Also sweeps ``<key>.tmp.<pid>`` leftovers from writers that crashed
        between :meth:`put`'s write and rename — those never match the
        entry glob and would otherwise accumulate forever.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for pattern in ("*/*.json", "*/*.tmp.*"):
            for entry in self.root.glob(pattern):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
