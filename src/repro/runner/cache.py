"""Content-addressed on-disk cache for sweep-point results.

Every cache entry is keyed by the SHA-256 of everything that determines a
sweep point's output: the engine version, the worker's identity, the full
platform configuration, and the point's parameters (seeds included).  A
re-run of ``python -m repro table2`` therefore recomputes nothing, while
*any* change to the platform config, the sweep grid, or the engine's
numeric behaviour misses cleanly.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json``.  The cache is
fail-soft: unreadable/unwritable storage degrades to recomputation, never
to an error — results must not depend on filesystem health.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..cache import ENGINE_VERSION
from .shard import canonical_json

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-leakyway``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-leakyway"


class ResultCache:
    """A content-addressed store of JSON sweep-point results."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        #: Fulfilled / recomputed lookups, for tests and ``--jobs`` tuning.
        self.hits = 0
        self.misses = 0
        #: Entries that existed on disk but failed to parse (also misses).
        self.corrupt = 0
        #: Payloads refused by :meth:`put` (non-finite floats — not JSON).
        self.rejected = 0

    def key(self, **components: Any) -> str:
        """SHA-256 hex key over the canonical JSON of ``components``.

        The engine version participates automatically so numeric-behaviour
        changes to the simulator invalidate every prior entry.
        """
        material = canonical_json({"engine": ENGINE_VERSION, **components})
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None (counts hit/miss).

        An entry that exists but fails to parse (a torn or truncated write)
        is evicted best-effort rather than left to be re-parsed — and
        re-missed — on every subsequent run.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass  # fail-soft: the recompute will overwrite it anyway
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (best effort, atomic rename).

        Entries must be *standard* JSON: a payload with a NaN/Infinity
        float would serialize to the non-JSON ``NaN``/``Infinity`` tokens,
        which strict parsers (and sqlite's JSON functions) reject.  Such a
        payload is simply not stored — the sweep keeps its in-memory value
        and the point recomputes next run — rather than poisoning the
        cache with an entry other readers cannot parse.
        """
        path = self._path(key)
        try:
            text = json.dumps(payload, sort_keys=True, allow_nan=False)
        except ValueError:
            self.rejected += 1
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(text)
            tmp.replace(path)
        except OSError:
            pass  # fail-soft: a broken cache only costs recomputation

    def clear(self) -> int:
        """Delete every entry; returns the number removed (test helper).

        Also sweeps ``<key>.tmp.<pid>`` leftovers from writers that crashed
        between :meth:`put`'s write and rename — those never match the
        entry glob and would otherwise accumulate forever.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for pattern in ("*/*.json", "*/*.tmp.*"):
            for entry in self.root.glob(pattern):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
