"""Parallel sharded sweep runner with on-disk result caching.

Every sweep experiment (capacity, noise, detection, sensitivity, channel
comparison) decomposes into independent points; this package runs those
points serially or across a process pool with **bit-identical output**, and
memoizes each point's result on disk keyed by the full content of the
computation (engine version + platform config + parameters + seeds).

Typical wiring, from an experiment module::

    def _point_worker(shard):          # top level: must pickle
        p = shard.params
        machine = Machine(p["config"], seed=p["machine_seed"])
        ...
        return {"interval": p["interval"], "ber": outcome.bit_error_rate}

    shards = make_shards(root_seed, [{...} for point in grid])
    rows = run_shards(_point_worker, shards, jobs=jobs, cache=cache,
                      cache_tag="my_sweep/v1")
"""

from .batchexec import TraceBatchPlan, run_batch_shards
from .cache import CACHE_DIR_ENV, ResultCache, default_cache_root
from .pool import (
    BACKOFF_CAP_SECONDS,
    SHARD_ERROR_KEY,
    backoff_seconds,
    is_error_record,
    run_shards,
)
from .runtime import (
    FRESH,
    RUNTIME_ENV,
    Runtime,
    resolve_runtime,
    set_default_runtime,
    use_default_runtime,
)
from .shard import (
    Shard,
    canonical_json,
    derive_seed,
    make_content_shards,
    make_shards,
)
from .warmstart import WarmStartPlan, clear_warm_states, run_warm_shards

__all__ = [
    "TraceBatchPlan",
    "run_batch_shards",
    "WarmStartPlan",
    "clear_warm_states",
    "run_warm_shards",
    "FRESH",
    "RUNTIME_ENV",
    "Runtime",
    "resolve_runtime",
    "set_default_runtime",
    "use_default_runtime",
    "BACKOFF_CAP_SECONDS",
    "CACHE_DIR_ENV",
    "ResultCache",
    "SHARD_ERROR_KEY",
    "backoff_seconds",
    "default_cache_root",
    "is_error_record",
    "run_shards",
    "Shard",
    "canonical_json",
    "derive_seed",
    "make_content_shards",
    "make_shards",
]
