"""Warm-start trial execution: pay each distinct setup prefix once.

Every sweep trial used to rebuild a :class:`~repro.sim.Machine` from
``(config, seed)`` and re-simulate the same warm-up/calibration prefix
before the part that actually varies.  A :class:`WarmStartPlan` splits a
trial into that shared **setup prefix** and a per-shard **body**; the
executor runs each distinct prefix once, takes a
:class:`~repro.sim.MachineCheckpoint`, and restores it before every body
instead of rebuilding.

The determinism contract is unchanged: because ``Machine.restore`` rewinds
*all* mutable simulation state (clock, RNG, caches, policy metadata, PMU
counters, allocator pool, fault streams), a warm trial is bit-identical to
a cold trial at any ``jobs`` value — the restore runs before **every**
body, including the first after a fresh setup and any fault-injected
retry.  Checkpoint digests join the result-cache key, so warm and cold
runs of the same computation never collide in the cache under a changed
prefix.

Worker processes keep a small per-process memo of built prefix states.  On
fork-start platforms (Linux) children inherit the parent's memo, so a
``jobs > 1`` sweep pays each prefix once in the parent and zero times in
the pool; spawn-start platforms rebuild lazily per process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..faults import FaultPlan
from ..obs import EventTrace, MetricsRegistry, get_registry
from .cache import ResultCache
from .pool import BACKOFF_CAP_SECONDS, run_shards
from .shard import Shard, canonical_json

#: ``setup(prefix_params) -> (machine, context)``: build a machine and run
#: the shared prefix (channel construction, calibration, priming).  Must be
#: a top-level function — it pickles into pool workers.
Setup = Callable[[Dict[str, Any]], Tuple[Any, Any]]

#: ``body(machine, context, shard) -> result dict``: the varying part of a
#: trial, run on a freshly restored machine.  Must derive all per-trial
#: state from the shard (reseed channels, regenerate messages).
Body = Callable[[Any, Any, Shard], Dict[str, Any]]

#: Prefix-build histogram buckets (seconds).
_PREFIX_SECONDS_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0)

#: Per-process cap on memoized prefix states (machine + checkpoint each);
#: evicted FIFO.  Sweeps group shards by prefix, so in practice a process
#: only ever needs the handful of prefixes routed to it.
_MAX_WARM_STATES = 16

#: prefix key -> (machine, context, checkpoint), per process.
_WARM_STATES: Dict[tuple, tuple] = {}


def clear_warm_states() -> None:
    """Drop this process's memoized prefix states (test isolation hook)."""
    _WARM_STATES.clear()


@dataclass(frozen=True)
class WarmStartPlan:
    """A trial split into a shared setup prefix and a varying body.

    ``prefix_keys`` names the shard params that feed ``setup``; shards
    agreeing on those params share one machine build + prefix execution.
    Everything else about a trial must live in the body.
    """

    setup: Setup
    body: Body
    prefix_keys: Tuple[str, ...]

    def prefix_of(self, shard: Shard) -> Dict[str, Any]:
        """The shard's prefix params (the setup's input)."""
        try:
            return {key: shard.params[key] for key in self.prefix_keys}
        except KeyError as missing:
            raise ReproError(
                f"shard {shard.index} is missing prefix param {missing} "
                f"(plan expects {self.prefix_keys})"
            ) from None

    def identity(self) -> str:
        """Stable name for cache keys and memo keys."""
        return f"{self.body.__module__}.{self.body.__qualname__}"


def _memo_key(identity: str, prefix_json: str, digest: str) -> tuple:
    """Memo key for one prefix state, qualified by the calling thread.

    Memoized machines are mutable and restored *in place* before every
    body, so a state entry must never be shared between threads — two
    service jobs running inline sweeps concurrently in one process would
    otherwise restore and mutate one machine simultaneously.  Pool worker
    processes are single-threaded, so the qualifier is constant there;
    fork-start children are cloned from the thread that built the parent
    prefixes, so memo inheritance across the fork still works.
    """
    return (threading.get_ident(), identity, prefix_json, digest)


def _memo_put(key: tuple, state: tuple) -> None:
    if len(_WARM_STATES) >= _MAX_WARM_STATES:
        _WARM_STATES.pop(next(iter(_WARM_STATES)))
    _WARM_STATES[key] = state


def _warm_state(plan: WarmStartPlan, prefix: Dict[str, Any], memo_key: tuple) -> tuple:
    """This process's (machine, context, checkpoint) for ``prefix``."""
    state = _WARM_STATES.get(memo_key)
    if state is None:
        machine, context = plan.setup(prefix)
        state = (machine, context, machine.checkpoint())
        _memo_put(memo_key, state)
    return state


class _WarmWorker:
    """Picklable shard worker that restores the prefix checkpoint per trial.

    ``checkpoints`` optionally carries a shared-memory
    :class:`~repro.runner.runtime.PayloadRef` to the parent-built
    ``{prefix_json: checkpoint}`` table.  Persistent-pool workers forked
    before this sweep's prefixes existed cannot inherit the parent memo;
    on a memo miss they still run ``plan.setup`` (machine and context are
    live objects only a build can produce) but adopt the *shipped* parent
    checkpoint — digest-checked — instead of capturing their own, so the
    state they restore per trial is byte-for-byte the parent's.
    """

    def __init__(
        self,
        plan: WarmStartPlan,
        digests: Dict[str, str],
        checkpoints=None,
    ):
        self.plan = plan
        self.digests = digests
        self.checkpoints = checkpoints
        #: Cache identity: the body function, like a cold worker's name.
        self.cache_identity = plan.identity()

    def cache_components(self, shard: Shard) -> Dict[str, Any]:
        """Extra cache-key components: prefix checkpoint digest + backend.

        The engine backend is folded in explicitly (falling back to the
        process default when the shard does not carry one) so cached rows
        are never replayed across backends silently — backends are proven
        bit-identical by the differential suites, but a cache hit must
        not be the mechanism enforcing that.
        """
        from ..engine import default_backend

        return {
            "checkpoint": self.digests[canonical_json(self.plan.prefix_of(shard))],
            "engine": shard.params.get("engine") or default_backend(),
        }

    def _shipped_checkpoint(self, prefix_json: str):
        """The parent's checkpoint for ``prefix_json`` from shm, if shipped."""
        if self.checkpoints is None:
            return None
        from .runtime import load_payload

        table = load_payload(self.checkpoints)
        checkpoint = table.get(prefix_json)
        if checkpoint is None or checkpoint.digest() != self.digests[prefix_json]:
            return None  # stale/foreign table: fall back to a local capture
        return checkpoint

    def __call__(self, shard: Shard) -> Dict[str, Any]:
        plan = self.plan
        prefix = plan.prefix_of(shard)
        prefix_json = canonical_json(prefix)
        memo_key = _memo_key(plan.identity(), prefix_json, self.digests[prefix_json])
        state = _WARM_STATES.get(memo_key)
        if state is None:
            machine, context = plan.setup(prefix)
            shipped = self._shipped_checkpoint(prefix_json)
            state = (machine, context, shipped or machine.checkpoint())
            _memo_put(memo_key, state)
        machine, context, checkpoint = state
        # Restore before *every* body — first use and retries included — so
        # execution never depends on what previously ran on this machine.
        machine.restore(checkpoint)
        return plan.body(machine, context, shard)


def run_warm_shards(
    plan: WarmStartPlan,
    shards: Sequence[Shard],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_tag: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[EventTrace] = None,
    faults: Optional[FaultPlan] = None,
    retries: int = 0,
    backoff_base: float = 0.0,
    backoff_cap: float = BACKOFF_CAP_SECONDS,
    on_error: Optional[str] = None,
    store=None,
    campaign: Optional[str] = None,
    runtime=None,
) -> List[Dict[str, Any]]:
    """Run ``shards`` through ``plan`` with per-prefix warm starts.

    Groups shards by their prefix params, builds each group's machine and
    checkpoint once in the parent (seeding the worker memo — forked pool
    children inherit it), then delegates to
    :func:`~repro.runner.pool.run_shards` with a worker that restores the
    checkpoint before every trial body.  All runner features compose
    unchanged: result caching (the checkpoint digest is part of the key),
    fault injection, retries, metrics, tracing, and campaign-store
    recording (the run lands once, as executor ``"warmstart"``, with its
    prefix checkpoint digests).

    Note the parent builds every distinct prefix even when all shards are
    cache hits — the digest is needed to *form* the keys.  A warm cache-hit
    sweep therefore costs one prefix execution per distinct prefix; the
    per-trial simulation is what the cache elides.
    """
    registry = metrics if metrics is not None else get_registry()
    shards = list(shards)

    # Group shards by canonical prefix (insertion order = shard order).
    groups: Dict[str, Dict[str, Any]] = {}
    group_sizes: Dict[str, int] = {}
    for shard in shards:
        prefix = plan.prefix_of(shard)
        prefix_json = canonical_json(prefix)
        groups.setdefault(prefix_json, prefix)
        group_sizes[prefix_json] = group_sizes.get(prefix_json, 0) + 1

    # Build each prefix once, checkpoint it, and record its digest.  The
    # states land in this process's memo: inline runs (jobs <= 1) reuse
    # them directly, forked pool children inherit them for free.
    digests: Dict[str, str] = {}
    built: Dict[str, Any] = {}
    capture_seconds = registry.histogram(
        "runner.checkpoint.capture.seconds", _PREFIX_SECONDS_BUCKETS
    )
    saved_seconds = 0.0
    for prefix_json, prefix in groups.items():
        start = time.perf_counter()
        machine, context = plan.setup(prefix)
        checkpoint = built[prefix_json] = machine.checkpoint()
        elapsed = time.perf_counter() - start
        digest = digests[prefix_json] = checkpoint.digest()
        _memo_put(_memo_key(plan.identity(), prefix_json, digest),
                  (machine, context, checkpoint))
        registry.counter("runner.checkpoint.captures").inc()
        registry.counter("runner.checkpoint.bytes").inc(checkpoint.approx_bytes)
        capture_seconds.observe(elapsed)
        # Each trial beyond the group's first would have re-run this prefix
        # cold; count the avoided builds as the (estimated) time saved.
        saved_seconds += elapsed * (group_sizes[prefix_json] - 1)
        if trace is not None:
            trace.emit(
                "runner.checkpoint.capture",
                prefix=prefix_json,
                digest=digest,
                seconds=elapsed,
                trials=group_sizes[prefix_json],
            )

    # Under a persistent runtime, ship the parent-built checkpoint table
    # through one shared-memory segment: pool workers forked before these
    # prefixes existed adopt the parent's checkpoints (digest-checked)
    # instead of each capturing their own, and the table travels once per
    # content rather than pickling per task.
    from .runtime import resolve_runtime

    checkpoints_ref = None
    rt = resolve_runtime(runtime)
    if rt is not None and jobs > 1 and built:
        checkpoints_ref = rt.put_payload(built, registry=registry)

    worker = _WarmWorker(plan, digests, checkpoints=checkpoints_ref)
    computed_before = registry.counter("runner.shards.computed").value
    results = run_shards(
        worker,
        shards,
        jobs=jobs,
        runtime=runtime,
        cache=cache,
        cache_tag=cache_tag,
        metrics=registry,
        trace=trace,
        faults=faults,
        retries=retries,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        on_error=on_error,
        store=store,
        campaign=campaign,
        _ingest={"executor": "warmstart", "digests": dict(digests)},
    )
    # Every computed (non-cached) trial restored the checkpoint exactly once
    # per successful attempt; retried attempts restore again, but those are
    # already visible via runner.retries, so count one restore per compute.
    computed = registry.counter("runner.shards.computed").value - computed_before
    registry.counter("runner.checkpoint.restores").inc(computed)
    registry.gauge("runner.checkpoint.saved_seconds").set(saved_seconds)
    return results
