"""Batched shard execution: one array program per warm-start group.

:func:`~repro.runner.warmstart.run_warm_shards` made the *setup prefix*
cheap; the trial bodies still execute one machine at a time.  For the
dominant sweep shape — every trial in a prefix group replays a trace on a
restored checkpoint and reduces the recorded results — this module runs
the whole group through the trial-batched engine
(:mod:`repro.engine.batch`): **one** checkpoint restore broadcast across
the trial axis, one merged program, per-trial results extracted and
reduced individually.

A :class:`TraceBatchPlan` is the batched analog of a
:class:`~repro.runner.warmstart.WarmStartPlan`, with the body split into a
pure trace builder and a result reducer so the executor can see — and
batch — the trace replay between them.  Everything else about the runner
contract is preserved bit-for-bit:

* results merge in shard order at any ``jobs`` value;
* each trial's result is keyed *individually* in the content-addressed
  :class:`~repro.runner.cache.ResultCache` (checkpoint digest and engine
  name included), so batched, warm-scalar, and parallel runs interoperate
  through the cache;
* deterministic fault injection and bounded retry compose unchanged —
  fault decisions key on ``(shard.index, attempt)`` exactly as in
  :func:`~repro.runner.pool.run_shards`, an injected shard is pulled out
  of its batch and retried scalar (a retried trial is a one-trial batch,
  which the differential suite pins as bit-identical), and exhausted
  shards yield error records in their merge slots;
* ``jobs > 1`` delegates to the process pool with a scalar one-trial
  worker — process isolation already parallelizes across trials, so the
  trial axis adds nothing there, and the cache keys stay identical;
* with a campaign store configured, the merged run is recorded once (as
  executor ``"batch"`` with its batch width and checkpoint digests) on
  either path — see :mod:`repro.store.ingest`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..engine import run_trace_batch
from ..errors import ReproError
from ..faults import FaultPlan, ShardFaultInjector
from ..obs import EventTrace, MetricsRegistry, NULL_TRACE, get_registry
from .cache import ResultCache
from .pool import (
    _SHARD_SECONDS_BUCKETS,
    BACKOFF_CAP_SECONDS,
    SHARD_ERROR_KEY,
    _cache_key,
    backoff_seconds,
    run_shards,
)
from .shard import Shard, canonical_json
from .warmstart import _PREFIX_SECONDS_BUCKETS, _memo_key, _memo_put, _warm_state

#: ``setup(prefix_params) -> (machine, context)``: build a machine and run
#: the shared prefix.  Same contract as :class:`WarmStartPlan.setup`.
Setup = Callable[[Dict[str, Any]], Tuple[Any, Any]]

#: ``make_trace(machine, context, shard) -> ops``: build the shard's trace
#: (a list of ``(op, core, addr)`` tuples).  MUST be read-only on the
#: machine — it runs against the restored-checkpoint state that every
#: trial in the batch shares, so any mutation would leak between trials.
#: Derive all per-trial variation from the shard (seed, params).
MakeTrace = Callable[[Any, Any, Shard], Sequence[Tuple[str, int, int]]]

#: ``reduce(machine, context, shard, results) -> result dict``: turn the
#: trial's recorded :class:`MemOpResult` list into the shard's result.
#: The machine holds the trial's end state (checkpoint restored + the
#: trial applied), so reducers may also read stats, PMU counters, or the
#: clock.
Reduce = Callable[[Any, Any, Shard, list], Dict[str, Any]]


@dataclass(frozen=True)
class TraceBatchPlan:
    """A sweep trial split into prefix setup, trace builder, and reducer.

    ``prefix_keys`` names the shard params feeding ``setup``; shards that
    agree on them share one machine build, one checkpoint, and — under
    :func:`run_batch_shards` with ``jobs <= 1`` — one batched array
    program.
    """

    setup: Setup
    make_trace: MakeTrace
    reduce: Reduce
    prefix_keys: Tuple[str, ...]

    def prefix_of(self, shard: Shard) -> Dict[str, Any]:
        """The shard's prefix params (the setup's input)."""
        try:
            return {key: shard.params[key] for key in self.prefix_keys}
        except KeyError as missing:
            raise ReproError(
                f"shard {shard.index} is missing prefix param {missing} "
                f"(plan expects {self.prefix_keys})"
            ) from None

    def identity(self) -> str:
        """Stable name for cache keys and memo keys."""
        return f"{self.make_trace.__module__}.{self.make_trace.__qualname__}"


class _BatchTrialWorker:
    """Picklable scalar worker: one shard as a one-trial batch.

    Used for the ``jobs > 1`` pool path and for scalar retries of shards
    pulled out of a batch; bit-identity between a T-trial batch and T
    one-trial batches is what makes the two paths interchangeable.
    """

    def __init__(self, plan: TraceBatchPlan, digests: Dict[str, str]):
        self.plan = plan
        self.digests = digests
        self.cache_identity = plan.identity()

    def cache_components(self, shard: Shard) -> Dict[str, Any]:
        """Extra cache-key components: prefix checkpoint digest + engine.

        The engine name is pinned to ``batch`` so cached rows are never
        replayed across engines silently — the backends are proven
        bit-identical by the differential suites, but a cache hit must not
        be the mechanism enforcing that.
        """
        return {
            "checkpoint": self.digests[canonical_json(self.plan.prefix_of(shard))],
            "engine": "batch",
        }

    def _state(self, shard: Shard) -> tuple:
        plan = self.plan
        prefix = plan.prefix_of(shard)
        prefix_json = canonical_json(prefix)
        memo_key = _memo_key(plan.identity(), prefix_json, self.digests[prefix_json])
        return _warm_state(_AsWarmPlan(plan), prefix, memo_key)

    def __call__(self, shard: Shard) -> Dict[str, Any]:
        plan = self.plan
        machine, context, checkpoint = self._state(shard)
        machine.restore(checkpoint)
        trace = plan.make_trace(machine, context, shard)
        result = run_trace_batch(machine, [trace], record=True)
        machine.restore(checkpoint)
        result.apply(0)
        return plan.reduce(machine, context, shard, result.results(0))


class _AsWarmPlan:
    """Duck-typed shim giving :func:`_warm_state` a ``setup`` to call."""

    def __init__(self, plan: TraceBatchPlan):
        self.setup = plan.setup


def run_batch_shards(
    plan: TraceBatchPlan,
    shards: Sequence[Shard],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_tag: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[EventTrace] = None,
    faults: Optional[FaultPlan] = None,
    retries: int = 0,
    backoff_base: float = 0.0,
    backoff_cap: float = BACKOFF_CAP_SECONDS,
    on_error: Optional[str] = None,
    batch_size: int = 64,
    store=None,
    campaign: Optional[str] = None,
    runtime=None,
) -> List[Dict[str, Any]]:
    """Run ``shards`` through ``plan``, batching trials per prefix group.

    The semantics — merge order, caching, fault injection, retries, error
    records, metrics — mirror :func:`~repro.runner.pool.run_shards` /
    :func:`~repro.runner.warmstart.run_warm_shards` exactly; only the
    execution strategy differs.  ``batch_size`` caps how many trials join
    one array program (memory for recorded results grows with the trial
    count; divergence bookkeeping grows with trial count × diverged sets).

    ``jobs > 1`` falls back to the process pool with a scalar one-trial
    worker: identical results, identical cache keys, and the pool already
    parallelizes across trials.
    """
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries}")
    if backoff_base < 0:
        raise ReproError(f"backoff_base must be >= 0, got {backoff_base}")
    if backoff_cap < 0:
        raise ReproError(f"backoff_cap must be >= 0, got {backoff_cap}")
    if batch_size < 1:
        raise ReproError(f"batch_size must be >= 1, got {batch_size}")
    if on_error is None:
        on_error = "record" if (faults is not None or retries > 0) else "raise"
    if on_error not in ("record", "raise"):
        raise ReproError(f"on_error must be 'record' or 'raise', got {on_error!r}")
    registry = metrics if metrics is not None else get_registry()
    event_trace = trace if trace is not None else NULL_TRACE
    wall_start = time.perf_counter()
    shards = list(shards)

    # Group shards by canonical prefix (insertion order = shard order).
    groups: Dict[str, Dict[str, Any]] = {}
    group_members: Dict[str, List[Shard]] = {}
    for shard in shards:
        prefix = plan.prefix_of(shard)
        prefix_json = canonical_json(prefix)
        groups.setdefault(prefix_json, prefix)
        group_members.setdefault(prefix_json, []).append(shard)

    # Build each prefix once in the parent (seeding the warm-state memo —
    # forked pool children inherit it) and record checkpoint digests for
    # the cache keys.  Same accounting as run_warm_shards.
    states: Dict[str, tuple] = {}
    digests: Dict[str, str] = {}
    capture_seconds = registry.histogram(
        "runner.checkpoint.capture.seconds", _PREFIX_SECONDS_BUCKETS
    )
    saved_seconds = 0.0
    for prefix_json, prefix in groups.items():
        start = time.perf_counter()
        machine, context = plan.setup(prefix)
        checkpoint = machine.checkpoint()
        elapsed = time.perf_counter() - start
        digest = digests[prefix_json] = checkpoint.digest()
        state = states[prefix_json] = (machine, context, checkpoint)
        _memo_put(_memo_key(plan.identity(), prefix_json, digest), state)
        registry.counter("runner.checkpoint.captures").inc()
        registry.counter("runner.checkpoint.bytes").inc(checkpoint.approx_bytes)
        capture_seconds.observe(elapsed)
        saved_seconds += elapsed * (len(group_members[prefix_json]) - 1)
        if event_trace is not NULL_TRACE:
            event_trace.emit(
                "runner.checkpoint.capture",
                prefix=prefix_json,
                digest=digest,
                seconds=elapsed,
                trials=len(group_members[prefix_json]),
            )
    registry.gauge("runner.checkpoint.saved_seconds").set(saved_seconds)

    worker = _BatchTrialWorker(plan, digests)
    if jobs > 1:
        computed_before = registry.counter("runner.shards.computed").value
        results = run_shards(
            worker,
            shards,
            jobs=jobs,
            runtime=runtime,
            cache=cache,
            cache_tag=cache_tag,
            metrics=registry,
            trace=trace,
            faults=faults,
            retries=retries,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            on_error=on_error,
            store=store,
            campaign=campaign,
            _ingest={
                "executor": "batch",
                "digests": dict(digests),
                "batch_size": batch_size,
            },
        )
        computed = registry.counter("runner.shards.computed").value - computed_before
        registry.counter("runner.checkpoint.restores").inc(computed * 2)
        return results

    # -- inline batched path ----------------------------------------------

    results: List[Optional[Dict[str, Any]]] = [None] * len(shards)
    slot_of: Dict[int, int] = {}
    for slot, shard in enumerate(shards):
        duplicate = slot_of.get(shard.index)
        if duplicate is not None:
            raise ReproError(
                f"duplicate shard index {shard.index} (positions {duplicate} "
                f"and {slot}): indices must be unique for a stable merge"
            )
        slot_of[shard.index] = slot

    keys: Dict[int, str] = {}
    cache_counts_before = (
        (cache.hits, cache.misses, cache.corrupt) if cache is not None else (0, 0, 0)
    )
    pending_by_prefix: Dict[str, List[Shard]] = {}
    n_pending = 0
    for prefix_json, members in group_members.items():
        for shard in members:
            if cache is not None:
                key = keys[slot_of[shard.index]] = _cache_key(
                    cache, worker, cache_tag, shard
                )
                hit = cache.get(key)
                if hit is not None:
                    results[slot_of[shard.index]] = hit
                    event_trace.emit("runner.cache.hit", shard=shard.index, key=key)
                    continue
                event_trace.emit("runner.cache.miss", shard=shard.index, key=key)
            pending_by_prefix.setdefault(prefix_json, []).append(shard)
            n_pending += 1

    injector = ShardFaultInjector(faults) if faults is not None else None
    shard_seconds = registry.histogram("runner.shard.seconds", _SHARD_SECONDS_BUCKETS)
    busy_seconds = 0.0
    retried_attempts = 0
    failed_shards = 0
    restores = 0
    n_batches = 0
    n_batched_trials = 0
    #: (shard, first failure record) for shards pulled out of their batch.
    retry_queue: List[Tuple[Shard, Dict[str, Any]]] = []

    def record_success(shard: Shard, result: Dict[str, Any], elapsed: float) -> None:
        nonlocal busy_seconds
        slot = slot_of[shard.index]
        results[slot] = result
        if cache is not None:
            cache.put(keys[slot], result)
        event_trace.emit("runner.shard", shard=shard.index, seconds=elapsed)
        busy_seconds += elapsed
        shard_seconds.observe(elapsed)

    def failure_record(shard: Shard, error: Exception, attempts: int) -> Dict[str, Any]:
        return {
            "shard": shard.index,
            "error": type(error).__name__,
            "message": str(error),
            "attempts": attempts,
        }

    for prefix_json, members in pending_by_prefix.items():
        machine, context, checkpoint = states[prefix_json]
        for chunk_start in range(0, len(members), batch_size):
            chunk = members[chunk_start : chunk_start + batch_size]
            batch_start = time.perf_counter()
            # Fault decisions fire before any work, keyed (index, attempt=0)
            # — identical to _attempt_shard at any jobs value.
            ready: List[Shard] = []
            for shard in chunk:
                if injector is not None:
                    try:
                        injector.check(shard.index, 0)
                    except Exception as error:
                        retry_queue.append((shard, failure_record(shard, error, 1)))
                        continue
                ready.append(shard)
            if not ready:
                continue
            machine.restore(checkpoint)
            restores += 1
            traces = []
            traced: List[Shard] = []
            for shard in ready:
                try:
                    traces.append(plan.make_trace(machine, context, shard))
                except Exception as error:
                    retry_queue.append((shard, failure_record(shard, error, 1)))
                    continue
                traced.append(shard)
            if not traced:
                continue
            batch = run_trace_batch(machine, traces, record=True)
            n_batches += 1
            n_batched_trials += len(traced)
            batch_elapsed = time.perf_counter() - batch_start
            share = batch_elapsed / len(traced)
            for t, shard in enumerate(traced):
                trial_start = time.perf_counter()
                machine.restore(checkpoint)
                restores += 1
                batch.apply(t)
                try:
                    result = plan.reduce(machine, context, shard, batch.results(t))
                except Exception as error:
                    retry_queue.append((shard, failure_record(shard, error, 1)))
                    continue
                record_success(
                    shard, result, share + time.perf_counter() - trial_start
                )
            event_trace.emit(
                "runner.batch",
                prefix=prefix_json,
                trials=len(traced),
                seconds=batch_elapsed,
            )

    # Scalar bounded retry for shards pulled out of their batch, with the
    # same (index, attempt) fault keying and backoff as _attempt_shard.
    for shard, first_failure in retry_queue:
        start = time.perf_counter()
        failure: Optional[Dict[str, Any]] = first_failure
        attempts = 1
        for attempt in range(1, retries + 1):
            delay = backoff_seconds(backoff_base, attempt, backoff_cap)
            if delay:
                time.sleep(delay)
            attempts = attempt + 1
            try:
                if injector is not None:
                    injector.check(shard.index, attempt)
                result = worker(shard)
            except Exception as error:
                failure = failure_record(shard, error, attempts)
                continue
            restores += 2
            failure = None
            break
        if attempts > 1:
            retried_attempts += attempts - 1
            event_trace.emit(
                "runner.shard.retried",
                shard=shard.index,
                retries=attempts - 1,
                recovered=failure is None,
            )
        if failure is not None:
            if on_error == "raise":
                raise ReproError(
                    f"shard {shard.index} failed after {attempts} "
                    f"attempt(s): {failure['error']}: {failure['message']}"
                )
            failed_shards += 1
            results[slot_of[shard.index]] = {SHARD_ERROR_KEY: failure}
            event_trace.emit(
                "runner.shard.failed",
                shard=shard.index,
                attempts=attempts,
                error=failure["error"],
            )
        else:
            record_success(shard, result, time.perf_counter() - start)

    registry.counter("runner.shards.total").inc(len(shards))
    registry.counter("runner.shards.computed").inc(n_pending)
    registry.counter("runner.shards.cached").inc(len(shards) - n_pending)
    registry.counter("runner.retries").inc(retried_attempts)
    registry.counter("runner.failures").inc(failed_shards)
    registry.counter("runner.batch.batches").inc(n_batches)
    registry.counter("runner.batch.trials").inc(n_batched_trials)
    registry.counter("runner.checkpoint.restores").inc(restores)
    if cache is not None:
        registry.counter("runner.cache.hits").inc(cache.hits - cache_counts_before[0])
        registry.counter("runner.cache.misses").inc(cache.misses - cache_counts_before[1])
        registry.counter("runner.cache.corrupt").inc(cache.corrupt - cache_counts_before[2])
    wall_seconds = time.perf_counter() - wall_start
    registry.gauge("runner.pool.jobs").set(1)
    if n_pending and wall_seconds > 0:
        registry.gauge("runner.pool.utilization").set(busy_seconds / wall_seconds)
    event_trace.emit(
        "runner.sweep",
        shards=len(shards),
        computed=n_pending,
        cached=len(shards) - n_pending,
        retries=retried_attempts,
        failures=failed_shards,
        jobs=1,
        wall_seconds=wall_seconds,
        busy_seconds=busy_seconds,
    )

    from ..store.ingest import campaign_name, record_sweep

    record_sweep(
        store,
        campaign if campaign is not None else campaign_name(cache_tag, plan.identity()),
        shards,
        results,
        executor="batch",
        batch_size=batch_size,
        digests=dict(digests),
        jobs=1,
        shards_computed=n_pending,
        shards_cached=len(shards) - n_pending,
        retries=retried_attempts,
        failures=failed_shards,
        wall_seconds=wall_seconds,
        registry=registry,
        trace=event_trace,
        cache_keys=(
            [keys.get(slot) for slot in range(len(shards))] if cache is not None else None
        ),
    )
    return results  # type: ignore[return-value]
