"""Set-index and slice-hash computation.

Intel LLCs are physically sliced (one slice per core on the paper's parts)
and the slice is selected by an undocumented XOR hash over high physical
address bits.  That hash is the reason eviction-set construction is a search
problem: an attacker who controls only the page offset cannot directly name
an LLC set.  We model the hash as a parameterised XOR fold — the same family
the published reverse-engineering results ("Systematic Reverse Engineering of
Cache Slice Selection", Maurice et al.) describe — so the search algorithms in
:mod:`repro.attacks.evset` face the same problem shape as on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import CacheGeometry
from ..errors import AddressError
from .address import LINE_OFFSET_BITS, validate_address


@dataclass(frozen=True)
class SetIndex:
    """Fully resolved location of a line within a (possibly sliced) cache."""

    slice: int
    set: int

    @property
    def flat(self) -> Tuple[int, int]:
        return (self.slice, self.set)


class SliceHash:
    """XOR-fold slice selector.

    Each output bit of the slice id is the parity of the physical line
    address ANDed with a mask.  The default masks interleave high address
    bits so consecutive lines spread over slices, as on real parts.
    """

    #: Default per-bit XOR masks (over the *line address*, i.e. addr >> 6),
    #: chosen to mix bits 6..33 and to be linearly independent.
    DEFAULT_MASKS = (
        0x1B5F575440 >> LINE_OFFSET_BITS,
        0x2EB5FAA880 >> LINE_OFFSET_BITS,
    )

    def __init__(self, n_slices: int, masks: Tuple[int, ...] = None):
        if n_slices <= 0 or (n_slices & (n_slices - 1)) != 0:
            raise AddressError(f"n_slices must be a power of two, got {n_slices}")
        self.n_slices = n_slices
        n_bits = n_slices.bit_length() - 1
        if masks is None:
            if n_bits > len(self.DEFAULT_MASKS):
                raise AddressError(
                    f"no default masks for {n_slices} slices; pass masks explicitly"
                )
            masks = self.DEFAULT_MASKS[:n_bits]
        if len(masks) != n_bits:
            raise AddressError(
                f"{n_slices} slices need {n_bits} masks, got {len(masks)}"
            )
        self._masks = tuple(masks)

    @property
    def masks(self) -> Tuple[int, ...]:
        return self._masks

    def slice_of(self, line_addr: int) -> int:
        """Slice id of a line address (``addr >> 6``)."""
        result = 0
        for bit, mask in enumerate(self._masks):
            result |= ((line_addr & mask).bit_count() & 1) << bit
        return result


class CacheSetMapping:
    """Maps physical addresses to (slice, set) for one cache level."""

    def __init__(self, geometry: CacheGeometry, slice_hash: SliceHash = None):
        self.geometry = geometry
        self._set_mask = geometry.sets - 1
        self._flat_cache: Dict[int, Tuple[int, int]] = {}
        if geometry.slices > 1:
            self.slice_hash = slice_hash or SliceHash(geometry.slices)
            if self.slice_hash.n_slices != geometry.slices:
                raise AddressError(
                    f"slice hash covers {self.slice_hash.n_slices} slices but "
                    f"geometry has {geometry.slices}"
                )
        else:
            self.slice_hash = None

    def index(self, addr: int) -> SetIndex:
        """Resolve ``addr`` to its (slice, set) in this cache level."""
        line = validate_address(addr) >> LINE_OFFSET_BITS
        set_idx = line & self._set_mask
        if self.slice_hash is None:
            return SetIndex(slice=0, set=set_idx)
        return SetIndex(slice=self.slice_hash.slice_of(line), set=set_idx)

    def flat_index(self, addr: int) -> Tuple[int, int]:
        """Memoized ``index(addr).flat``: the hot-path set resolution.

        The slice hash and set mask are pure functions of the line address,
        so results are cached per line.  The memo goes through
        :meth:`index` on a miss, which keeps subclasses that override the
        mapping function (e.g. the randomized-LLC countermeasure) correct.
        The working set of any experiment is a bounded set of allocated
        lines, which bounds the memo.
        """
        line = validate_address(addr) >> LINE_OFFSET_BITS
        try:
            cache = self._flat_cache
        except AttributeError:
            # Subclasses may bypass __init__ (RandomizedSetMapping does).
            cache = self._flat_cache = {}
        flat = cache.get(line)
        if flat is None:
            flat = cache[line] = self.index(addr).flat
        return flat

    def congruent(self, a: int, b: int) -> bool:
        """True when two addresses map to the same slice and set.

        Goes through the :meth:`flat_index` memo: congruence scans (noise
        working sets, eviction-set verification) test thousands of
        candidates against a handful of targets, and the mapping function
        is pure per mapping object.
        """
        return self.flat_index(a) == self.flat_index(b)

    def set_bits(self) -> int:
        """Number of address bits consumed by the set index."""
        return self._set_mask.bit_length()
