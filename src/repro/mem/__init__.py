"""Physical memory modeling: addresses, set/slice mapping, page allocation."""

from .address import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    LINE_OFFSET_BITS,
    PAGE_OFFSET_BITS,
    line_address,
    line_offset,
    page_number,
    page_offset,
    validate_address,
)
from .layout import CacheSetMapping, SliceHash, SetIndex
from .allocator import PageAllocator, AddressSpace

__all__ = [
    "CACHE_LINE_SIZE",
    "PAGE_SIZE",
    "LINE_OFFSET_BITS",
    "PAGE_OFFSET_BITS",
    "line_address",
    "line_offset",
    "page_number",
    "page_offset",
    "validate_address",
    "CacheSetMapping",
    "SliceHash",
    "SetIndex",
    "PageAllocator",
    "AddressSpace",
]
