"""Physical-address arithmetic.

Addresses are plain integers (byte-granular physical addresses).  All cache
state is keyed on *line addresses* — the address with its low six bits
dropped — exactly as a real tag/index pipeline would see them.
"""

from __future__ import annotations

from ..config import CACHE_LINE_SIZE, PAGE_SIZE
from ..errors import AddressError

#: log2(cache line size): the bits below the set index.
LINE_OFFSET_BITS = CACHE_LINE_SIZE.bit_length() - 1
#: log2(page size): the bits an unprivileged attacker controls.
PAGE_OFFSET_BITS = PAGE_SIZE.bit_length() - 1
#: Number of cache lines in one page.
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE


def validate_address(addr: int) -> int:
    """Check that ``addr`` is a usable physical address and return it."""
    if not isinstance(addr, int) or isinstance(addr, bool):
        raise AddressError(f"address must be an int, got {type(addr).__name__}")
    if addr < 0:
        raise AddressError(f"address must be non-negative, got {addr}")
    return addr


def line_address(addr: int) -> int:
    """The line-aligned address containing ``addr`` (low 6 bits cleared)."""
    return validate_address(addr) >> LINE_OFFSET_BITS << LINE_OFFSET_BITS


def line_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its cache line."""
    return validate_address(addr) & (CACHE_LINE_SIZE - 1)


def page_number(addr: int) -> int:
    """Physical page frame number containing ``addr``."""
    return validate_address(addr) >> PAGE_OFFSET_BITS


def page_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its page."""
    return validate_address(addr) & (PAGE_SIZE - 1)
