"""Physical page allocation and per-process address spaces.

On real hardware an unprivileged attacker controls the low 12 bits of its
addresses (the page offset) but receives *random* physical page frames from
the OS.  :class:`PageAllocator` models the OS frame pool; :class:`AddressSpace`
models one process's view: it can allocate pages and enumerate candidate
lines, but learning which LLC set a line maps to requires either the
simulator's ground truth (tests) or a search algorithm
(:mod:`repro.attacks.evset`).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from ..config import PAGE_SIZE, CACHE_LINE_SIZE
from ..errors import AddressError
from .address import PAGE_OFFSET_BITS, LINES_PER_PAGE
from .layout import CacheSetMapping

#: Size of a huge page (2 MiB) and the number of 4 KiB frames it spans.
HUGE_PAGE_SIZE = 2 * 2**20
FRAMES_PER_HUGE_PAGE = HUGE_PAGE_SIZE // PAGE_SIZE

#: Rejection-sampling attempts before :meth:`PageAllocator.alloc_frame`
#: falls back to drawing directly from the free set.  Generous enough that
#: a pool under ~98% occupancy virtually never falls back (keeping the RNG
#: stream — hence every derived address — identical to the unbounded
#: sampler), while a nearly full pool stays O(frames) instead of looping
#: toward forever.
ALLOC_ATTEMPTS = 64


class PageAllocator:
    """Hands out distinct, randomly chosen physical page frames.

    ``frames`` bounds physical memory (default models 16 GiB).  Frames are
    drawn without replacement so two processes never share a page — matching
    the paper's no-shared-data threat model.
    """

    def __init__(self, rng: random.Random, frames: int = 16 * 2**30 // PAGE_SIZE):
        if frames <= 0:
            raise AddressError(f"frames must be positive, got {frames}")
        self._rng = rng
        self._frames = frames
        self._allocated: set[int] = set()

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def alloc_frame(self) -> int:
        """Allocate one page frame; returns its base physical address.

        Rejection sampling is bounded at :data:`ALLOC_ATTEMPTS` draws; a
        degenerate (nearly exhausted) pool then samples one frame uniformly
        from the sorted free set instead of spinning.
        """
        if len(self._allocated) >= self._frames:
            raise AddressError("physical memory exhausted")
        for _ in range(ALLOC_ATTEMPTS):
            frame = self._rng.randrange(self._frames)
            if frame not in self._allocated:
                self._allocated.add(frame)
                return frame << PAGE_OFFSET_BITS
        free = sorted(set(range(self._frames)) - self._allocated)
        frame = free[self._rng.randrange(len(free))]
        self._allocated.add(frame)
        return frame << PAGE_OFFSET_BITS

    def alloc_frames(self, count: int) -> List[int]:
        return [self.alloc_frame() for _ in range(count)]

    def capture(self) -> tuple:
        """Allocated frame numbers as a sorted tuple.

        Sorted so equal pools capture equally regardless of set-iteration
        order — the tuple feeds checkpoint digests, which must be stable
        across processes.  (The allocator's RNG belongs to the machine and
        is checkpointed there.)
        """
        return tuple(sorted(self._allocated))

    def restore(self, state: tuple) -> None:
        """Restore the frame pool from :meth:`capture` output."""
        self._allocated = set(state)

    def alloc_huge_frame(self) -> int:
        """Allocate a 2 MiB-aligned, physically contiguous huge page.

        Huge pages hand the process 21 physical address bits — enough to
        cover every LLC set-index bit, which is why real attacks request
        them: set targeting stops being a search problem (only the slice
        hash's contribution from the page base stays unknown).
        """
        n_huge = self._frames // FRAMES_PER_HUGE_PAGE
        if n_huge == 0:
            raise AddressError("physical memory too small for huge pages")
        for _ in range(10_000):
            huge_index = self._rng.randrange(n_huge)
            base_frame = huge_index * FRAMES_PER_HUGE_PAGE
            span = range(base_frame, base_frame + FRAMES_PER_HUGE_PAGE)
            if any(frame in self._allocated for frame in span):
                continue
            self._allocated.update(span)
            return base_frame << PAGE_OFFSET_BITS
        raise AddressError(
            "could not find a free huge page (memory too fragmented)"
        )


class AddressSpace:
    """One process's pool of allocated memory.

    The process knows its own addresses (and their page offsets) but not how
    they map into the sliced LLC.  ``lines_with_offset`` yields one line per
    page at a fixed page offset — the standard way attacks generate candidate
    lines that agree on the low set-index bits.
    """

    def __init__(self, allocator: PageAllocator, name: str = "proc"):
        self._allocator = allocator
        self.name = name
        self._pages: List[int] = []
        self._huge_pages: List[int] = []

    @property
    def pages(self) -> List[int]:
        return list(self._pages)

    def alloc_pages(self, count: int) -> List[int]:
        """Grow this address space by ``count`` pages."""
        new = self._allocator.alloc_frames(count)
        self._pages.extend(new)
        return new

    def alloc_huge_pages(self, count: int) -> List[int]:
        """Allocate ``count`` 2 MiB huge pages; returns their base addresses."""
        bases = [self._allocator.alloc_huge_frame() for _ in range(count)]
        self._huge_pages.extend(bases)
        return bases

    @property
    def huge_pages(self) -> List[int]:
        return list(self._huge_pages)

    def lines_with_offset(self, offset: int, count: Optional[int] = None) -> List[int]:
        """Line addresses at ``offset`` within each page (allocating as needed)."""
        if offset % CACHE_LINE_SIZE != 0 or not 0 <= offset < PAGE_SIZE:
            raise AddressError(
                f"offset must be a line-aligned page offset, got {offset}"
            )
        if count is not None and count > len(self._pages):
            self.alloc_pages(count - len(self._pages))
        pages = self._pages if count is None else self._pages[:count]
        return [page + offset for page in pages]

    def contiguous_lines(self, count: int) -> List[int]:
        """``count`` lines covering whole pages (all 64 offsets per page).

        Unlike :meth:`lines_with_offset` — whose fixed offset confines the
        lines to sets ≡ offset/64 (mod 64) in any cache with ≥64 sets —
        these lines sweep every set index, which is what occupancy-style
        attacks need.
        """
        pages_needed = (count + LINES_PER_PAGE - 1) // LINES_PER_PAGE
        if pages_needed > len(self._pages):
            self.alloc_pages(pages_needed - len(self._pages))
        lines: List[int] = []
        for page in self._pages[:pages_needed]:
            for i in range(LINES_PER_PAGE):
                lines.append(page + i * CACHE_LINE_SIZE)
                if len(lines) == count:
                    return lines
        return lines

    def candidate_lines(self, offset: int = 0) -> Iterator[int]:
        """Endless stream of candidate lines at a fixed page offset.

        Allocates new pages lazily; used by eviction-set search, which does
        not know in advance how many candidates it must test.
        """
        index = 0
        while True:
            if index >= len(self._pages):
                self.alloc_pages(max(8, len(self._pages) // 2))
            yield self._pages[index] + offset
            index += 1

    # ------------------------------------------------------------------
    # Ground-truth helpers (used by tests and by experiments that assume
    # eviction sets are already built, as the paper's threat model allows).
    # ------------------------------------------------------------------

    def congruent_lines(
        self,
        mapping: CacheSetMapping,
        target: int,
        count: int,
        offset: Optional[int] = None,
    ) -> List[int]:
        """Find ``count`` lines congruent with ``target`` under ``mapping``.

        This peeks at the simulator's ground-truth mapping; attack code that
        must *search* for congruent lines uses :mod:`repro.attacks.evset`
        instead.
        """
        if offset is None:
            offset = target & (PAGE_SIZE - 1) & ~(CACHE_LINE_SIZE - 1)
        found: List[int] = []
        target_flat = mapping.flat_index(target)
        for line in self.candidate_lines(offset):
            if line != target and mapping.flat_index(line) == target_flat:
                found.append(line)
                if len(found) == count:
                    return found
            if len(self._pages) > 2_000_000:  # pragma: no cover - safety net
                raise AddressError("could not find enough congruent lines")
        raise AssertionError("unreachable")  # pragma: no cover

    def lines_in_page(self, page_base: int) -> List[int]:
        """All line addresses within one of this space's pages."""
        if page_base not in self._pages:
            raise AddressError(f"page {page_base:#x} not in address space {self.name}")
        return [page_base + i * CACHE_LINE_SIZE for i in range(LINES_PER_PAGE)]
