"""The covert-channel design space (summary benchmark).

One table lining up every channel class on speed, error rate, per-bit
footprint, and setup requirements — the axes along which the paper argues
NTP+NTP's position: Prime+Probe's speed problem is its >= w+1 references
per bit; the shared-memory prefetch channels are fast but need page
deduplication; NTP+NTP keeps the practical threat model *and* the two-
references-per-bit footprint.
"""

from conftest import artifact, report

from repro.analysis.reporting import format_table
from repro.experiments.channel_comparison import (
    ComparisonResult,
    run_channel_comparison,
)


def test_channel_design_space(once):
    result = once(run_channel_comparison)
    artifact("channel_comparison", result)
    report(
        "Covert-channel design space (best operating points, quiet machine)",
        format_table(ComparisonResult.HEADER, result.rows()),
    )
    ntp = result.profile("NTP+NTP")
    pp = result.profile("Prime+Probe")
    shared = result.profile("Prefetch+Prefetch")
    occupancy = result.profile("occupancy (demo-scale LLC)")
    # The paper's positioning, as assertions:
    assert ntp.refs_per_bit <= 3 and pp.refs_per_bit >= 17, (
        "the set-associativity bypass is the footprint gap"
    )
    assert ntp.capacity_kb_per_s > 2.5 * pp.capacity_kb_per_s
    assert shared.needs_shared_memory and not ntp.needs_shared_memory
    assert shared.capacity_kb_per_s > 150, "shared-memory channels are fast too"
    assert not occupancy.needs_eviction_sets
    assert occupancy.capacity_kb_per_s < ntp.capacity_kb_per_s / 20