"""Section V-A3 — event-detection false negatives.

Paper: a victim touching its line every 1.5K cycles is missed ~50% of the
time by Prime+Scope (its 1906-cycle preparation is a blind window longer
than the period) but <2% of the time by Prime+Prefetch+Scope.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.detection import run_detection_comparison
from repro.sim.machine import Machine

DURATION = 1_000_000
PAPER = {"PrimeScope": "~50%", "PrimePrefetchScope": "<2%"}


def test_secVA3_false_negative_rates(once):
    results = once(
        run_detection_comparison, lambda: Machine.skylake(seed=106), 1500, DURATION
    )
    rows = [
        (
            r.attack,
            PAPER[r.attack],
            f"{r.false_negative_rate * 100:.1f}%",
            len(r.victim_accesses),
            len(r.detections),
        )
        for r in results
    ]
    report(
        "Section V-A3 — false negative rate, victim period 1.5K cycles",
        format_table(("attack", "paper FN", "measured FN", "events", "detections"), rows),
    )
    by_name = {r.attack: r for r in results}
    assert 0.35 < by_name["PrimeScope"].false_negative_rate < 0.65
    assert by_name["PrimePrefetchScope"].false_negative_rate < 0.02
