"""Section IV-B3 quantified — channel robustness vs third-party noise.

Extension benchmark: the paper argues NTP+NTP errors self-reset and points
at multi-set encodings for reliability; this sweep measures the BER of each
channel variant as third-party traffic into the monitored sets increases.
"""

from conftest import artifact, report

from repro.analysis.reporting import format_table
from repro.experiments.noise_sweep import run_noise_sweep
from repro.sim.machine import Machine


def test_noise_robustness_sweep(once):
    result = once(run_noise_sweep, lambda: Machine.skylake(seed=210), None, 192)
    artifact("noise_sweep", result)
    report(
        "Section IV-B3 — bit error rate vs noise intensity "
        "(fills into monitored sets per 2K cycles)",
        format_table(result.header(), result.rows()),
    )
    # Quiet machine: everything is clean.
    for name in result.curves:
        assert result.curve(name)[0].bit_error_rate < 0.02, name
    # Under the heaviest noise: redundancy wins, Prime+Probe suffers most
    # (its per-bit exposure window is an order of magnitude longer).
    assert result.final_ber("ntp 3-set redundant") <= result.final_ber("ntp+ntp")
    assert result.final_ber("prime+probe") > result.final_ber("ntp+ntp")
    assert result.final_ber("prime+probe") > 0.02