"""Figure 8 + Table II — channel capacity sweeps on both platforms.

Paper peaks (Table II): NTP+NTP 302 / 275 KB/s, Prime+Probe 86 / 81 KB/s
on Skylake / Kaby Lake — NTP+NTP over 3x Prime+Probe.  Figure 8's shape:
error rates stay low and capacity grows with the raw rate up to a
threshold, beyond which errors explode and capacity collapses.
"""

import pytest
from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.capacity_sweep import run_capacity_sweep
from repro.sim.machine import Machine

N_BITS = 384
PAPER_PEAKS = {
    ("ntp+ntp", "skylake"): 302,
    ("ntp+ntp", "kaby lake"): 275,
    ("prime+probe", "skylake"): 86,
    ("prime+probe", "kaby lake"): 81,
}


@pytest.fixture(scope="module")
def sweeps():
    factories = {
        "skylake": lambda: Machine.skylake(seed=104),
        "kaby lake": lambda: Machine.kaby_lake(seed=104),
    }
    results = {}
    for platform, factory in factories.items():
        for channel in ("ntp+ntp", "prime+probe"):
            results[(channel, platform)] = run_capacity_sweep(
                factory, channel, n_bits=N_BITS
            )
    return results


def test_fig8_curve_shapes(once, sweeps):
    once(lambda: None)
    for (channel, platform), sweep in sweeps.items():
        rows = sweep.rows()
        report(
            f"Figure 8 — {channel} on {platform}: capacity/BER vs raw rate",
            format_table(("interval", "raw KB/s", "BER", "capacity KB/s"), rows),
        )
        # Shape: the fastest point is past the cliff (high error), and the
        # peak is at least twice the slowest point's capacity.
        points = sweep.points
        assert points[-1].bit_error_rate > 0.10, (channel, platform)
        assert points[0].bit_error_rate < 0.05, (channel, platform)
        assert sweep.peak.capacity_kb_per_s > 1.5 * points[0].capacity_kb_per_s


def test_table2_peak_capacities(once, sweeps):
    once(lambda: None)
    rows = []
    for (channel, platform), sweep in sweeps.items():
        paper = PAPER_PEAKS[(channel, platform)]
        rows.append(
            (channel, platform, paper, f"{sweep.peak.capacity_kb_per_s:.0f}")
        )
    report(
        "Table II — maximum channel capacities (KB/s)",
        format_table(("channel", "platform", "paper", "measured"), rows),
    )
    for platform in ("skylake", "kaby lake"):
        ntp = sweeps[("ntp+ntp", platform)].peak.capacity_kb_per_s
        pp = sweeps[("prime+probe", platform)].peak.capacity_kb_per_s
        paper_ntp = PAPER_PEAKS[("ntp+ntp", platform)]
        paper_pp = PAPER_PEAKS[("prime+probe", platform)]
        # Within 35% of the paper's absolute numbers...
        assert abs(ntp - paper_ntp) / paper_ntp < 0.35
        assert abs(pp - paper_pp) / paper_pp < 0.45
        # ...and the headline factor holds: NTP+NTP wins by ~3x.
        assert ntp > 2.5 * pp
