"""Figure 13 — eviction-set construction time, baseline vs Algorithm 2.

Paper: the prefetch-based method builds a full eviction set several times
faster than the access-based state of the art on both platforms (execution
time in milliseconds; with the Intel policy the memory-reference advantage
is 7.25x, Section VI-D).
"""

import pytest
from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.evset_speed import run_evset_speed_experiment
from repro.sim.machine import Machine


@pytest.fixture(scope="module")
def results():
    return {
        "skylake": run_evset_speed_experiment(lambda: Machine.skylake(seed=109)),
        "kaby lake": run_evset_speed_experiment(lambda: Machine.kaby_lake(seed=109)),
    }


def test_fig13_construction_time(once, results):
    once(lambda: None)
    rows = []
    for platform, result in results.items():
        rows.append(
            (
                platform,
                f"{result.baseline_ms:.2f} ms",
                f"{result.prefetch_ms:.2f} ms",
                f"{result.time_speedup:.1f}x",
                f"{result.reference_ratio:.1f}x",
            )
        )
    report(
        "Figure 13 — eviction set construction: baseline vs ours\n"
        "paper: ours several times faster; 7.25x fewer references (VI-D)",
        format_table(
            ("platform", "baseline", "ours", "time speedup", "ref ratio"), rows
        ),
    )
    for platform, result in results.items():
        assert result.time_speedup > 3.0, platform
        assert result.reference_ratio > 3.0, platform
        assert result.prefetch_accuracy >= 0.9, platform
        assert result.baseline_accuracy >= 0.7, platform
        assert len(result.prefetch.lines) == 16
