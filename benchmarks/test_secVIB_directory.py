"""Section VI-B — the non-inclusive/directory hypothesis (future work).

The paper conjectures that on non-inclusive-LLC parts, where PREFETCHNTA
fills only the L1 and the coherence directory, a directory version of
NTP+NTP exists *iff* prefetch-allocated directory entries are installed as
eviction candidates.  This extension exercises both sides of the
conditional on the directory model.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.directory.hierarchy import DirectoryConfig
from repro.directory.ntp import run_directory_ntp_exchange

PATTERN = [1, 0, 1, 1, 0, 0, 1, 0] * 8


def test_secVIB_directory_hypothesis(once):
    vulnerable = once(run_directory_ntp_exchange, PATTERN)
    safe = run_directory_ntp_exchange(
        PATTERN, config=DirectoryConfig(directory_prefetch_insert_age=2)
    )
    rows = [
        (
            "prefetch entries at age 3 (vulnerable hypothesis)",
            "channel should work",
            f"BER {vulnerable.bit_error_rate * 100:.1f}%",
        ),
        (
            "prefetch entries at age 2 (safe insertion)",
            "channel should fail",
            f"BER {safe.bit_error_rate * 100:.1f}%",
        ),
    ]
    report(
        "Section VI-B — directory NTP+NTP under both insertion hypotheses",
        format_table(("directory policy", "expectation", "measured"), rows),
    )
    assert vulnerable.works
    assert not safe.works


def test_secVIB_amd_buffer_hypothesis(once):
    """§VI-B's closing note: a software-invisible NT buffer would yield an
    even easier channel — conflicts need no set targeting at all."""
    from repro.directory.amd_buffer import run_amd_buffer_exchange

    full = once(run_amd_buffer_exchange, PATTERN, 8)
    starved = run_amd_buffer_exchange(PATTERN, capacity=8, sender_lines=4)
    rows = [
        ("8 arbitrary sender lines (== capacity)", "channel works",
         f"BER {full.bit_error_rate * 100:.1f}%"),
        ("4 sender lines (under capacity)", "channel fails",
         f"BER {starved.bit_error_rate * 100:.1f}%"),
    ]
    report(
        "Section VI-B — hypothetical AMD NT-buffer channel",
        format_table(("sender behaviour", "expectation", "measured"), rows),
    )
    assert full.works
    assert not starved.works
