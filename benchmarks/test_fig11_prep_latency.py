"""Figure 11 — preparation-step latency: Prime+Scope vs Prime+Prefetch+Scope.

Paper means: 1906 vs 1043 cycles (Skylake), 1762 vs 1138 (Kaby Lake) —
PREFETCHNTA cuts the priming cost roughly in half (and the reference count
from 192 to 33).
"""

import pytest
from conftest import report

from repro.analysis.reporting import format_table
from repro.attacks.prime_scope import PrimePrefetchScope, PrimeScope
from repro.experiments.prep_latency import run_prep_latency_experiment
from repro.sim.machine import Machine

ROUNDS = 300
PAPER = {"skylake": (1906, 1043), "kaby lake": (1762, 1138)}


@pytest.fixture(scope="module")
def results():
    return {
        "skylake": run_prep_latency_experiment(Machine.skylake(seed=105), rounds=ROUNDS),
        "kaby lake": run_prep_latency_experiment(Machine.kaby_lake(seed=105), rounds=ROUNDS),
    }


def test_fig11_prep_latency(once, results):
    once(lambda: None)
    rows = []
    for platform, result in results.items():
        ps, pps = result.summaries()
        paper_ps, paper_pps = PAPER[platform]
        rows.append((platform, "Prime+Scope", paper_ps, f"{ps.mean:.0f}"))
        rows.append((platform, "Prime+Prefetch+Scope", paper_pps, f"{pps.mean:.0f}"))
    report(
        "Figure 11 — preparation step latency (cycles, mean of CDF)",
        format_table(("platform", "attack", "paper", "measured"), rows),
    )
    for platform, result in results.items():
        ps, pps = result.summaries()
        assert result.speedup > 1.5, platform
        paper_ps, paper_pps = PAPER[platform]
        assert abs(ps.mean - paper_ps) / paper_ps < 0.45, platform
        assert abs(pps.mean - paper_pps) / paper_pps < 0.45, platform
        # CDF shape: PPS's slowest prep is still faster than P+S's median.
        ps_xs, _ = result.cdfs()[0]
        pps_xs, _ = result.cdfs()[1]
        assert max(pps_xs) < ps.p50 * 1.3, platform


def test_fig11_reference_counts(once):
    once(lambda: None)
    rows = [
        ("Prime+Scope", 192, PrimeScope.PREP_REFERENCES),
        ("Prime+Prefetch+Scope", 33, PrimePrefetchScope.PREP_REFERENCES),
    ]
    report(
        "Listing 1 vs Listing 2 — cache references per preparation step",
        format_table(("attack", "paper", "this model"), rows),
    )
    assert PrimePrefetchScope.PREP_REFERENCES == 33
    assert PrimeScope.PREP_REFERENCES >= 4 * PrimePrefetchScope.PREP_REFERENCES
