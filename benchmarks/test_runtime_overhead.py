"""Persistent-runtime overhead gate: >= 2x less orchestration per round.

A multi-round search re-enters ``run_shards`` once per round.  With the
fresh runtime every round pays a full ``ProcessPoolExecutor`` spawn —
fork, import, warm-up — before the first shard runs; the persistent
:class:`repro.runner.Runtime` spawns the pool once and reuses it, so
later rounds pay only chunk submission.  This benchmark runs the same
20+-round seeded mutation search at ``--jobs 4`` both ways and gates the
*orchestration overhead per round*:

    overhead = search wall time - sum(runner.shard.seconds)

i.e. everything that is not shard compute — pool provisioning, pickling,
scheduling, merging.  Shard compute itself is identical by construction
(the determinism suite pins trajectories bit-identical), so subtracting
it isolates exactly what the persistent runtime exists to amortize.

Timing uses best-of-N interleaved measurement rounds per runtime; noise
only ever adds overhead, so the minima are each runtime's cleanest
measurement.  Each persistent measurement builds its *own* Runtime —
the one-time pool spawn is inside the measured window, not hidden.

The run doubles as the leak gate: after ``Runtime.close()`` every worker
pid must be gone and no ``repro_rt*`` shared-memory segment may remain.
"""

import gc
import os
import time

from conftest import artifact, report

from repro.obs import MetricsRegistry
from repro.runner import FRESH, Runtime
from repro.search import EvalContext, MutationSearch, ToyCliffObjective

JOBS = 4
BUDGET = 96
POPULATION = 4  # 96 evaluations / 4 per round = 24 rounds
SEED = 13
ROUNDS = 3
OVERHEAD_GATE = 2.0
MIN_SEARCH_ROUNDS = 20


def _driver():
    # The default 101-point grid dries up long before 20 rounds of
    # distinct candidates; a 501-point grid sustains the full budget.
    objective = ToyCliffObjective(hi=2000, step=4)
    return MutationSearch(objective, budget=BUDGET, population=POPULATION)


def _measure_once(runtime) -> dict:
    registry = MetricsRegistry()
    ctx = EvalContext(seed=SEED, jobs=JOBS, metrics=registry, runtime=runtime)
    gc.collect()
    start = time.perf_counter()
    outcome = _driver().run(ctx)
    wall = time.perf_counter() - start
    compute = registry.histogram("runner.shard.seconds").total
    return {
        "rounds": outcome.rounds,
        "evaluations": outcome.evaluations_used,
        "fingerprint": outcome.fingerprint,
        "wall_seconds": wall,
        "compute_seconds": compute,
        "overhead_per_round": (wall - compute) / outcome.rounds,
        "pool_spawns": registry.counter("runner.runtime.spawns").value,
        "pool_reuses": registry.counter("runner.runtime.reuses").value,
    }


def _shm_segments() -> list:
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith("repro_rt"))
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm hosts
        return []


def _alive(pids) -> list:
    alive = []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        alive.append(pid)
    return alive


def _measure() -> dict:
    fresh_runs, persistent_runs = [], []
    leaked_pids, leaked_segments = [], []
    for _ in range(ROUNDS):
        fresh_runs.append(_measure_once(FRESH))
        with Runtime(name="bench") as rt:
            persistent_runs.append(_measure_once(rt))
            pids = rt.worker_pids()
        leaked_pids.extend(_alive(pids))
        leaked_segments.extend(_shm_segments())

    fresh = min(fresh_runs, key=lambda r: r["overhead_per_round"])
    persistent = min(persistent_runs, key=lambda r: r["overhead_per_round"])
    return {
        "jobs": JOBS,
        "budget": BUDGET,
        "seed": SEED,
        "rounds": persistent["rounds"],
        "fingerprints_match": fresh["fingerprint"] == persistent["fingerprint"],
        "fresh_wall_seconds": fresh["wall_seconds"],
        "persistent_wall_seconds": persistent["wall_seconds"],
        "fresh_overhead_per_round": fresh["overhead_per_round"],
        "persistent_overhead_per_round": persistent["overhead_per_round"],
        "overhead_reduction": (
            fresh["overhead_per_round"] / persistent["overhead_per_round"]
        ),
        "persistent_pool_spawns": persistent["pool_spawns"],
        "persistent_pool_reuses": persistent["pool_reuses"],
        "leaked_worker_pids": leaked_pids,
        "leaked_shm_segments": leaked_segments,
        "gate": OVERHEAD_GATE,
    }


def test_runtime_overhead(once):
    result = once(_measure)
    artifact("runtime_overhead", result)
    report(
        "Persistent runtime — per-round orchestration overhead vs fresh "
        f"pools ({result['rounds']}-round mutation search, jobs={JOBS})",
        f"fresh:      {result['fresh_overhead_per_round'] * 1e3:.2f} ms/round "
        f"overhead ({result['fresh_wall_seconds']:.2f}s wall)\n"
        f"persistent: {result['persistent_overhead_per_round'] * 1e3:.2f} ms/round "
        f"overhead ({result['persistent_wall_seconds']:.2f}s wall)\n"
        f"reduction:  {result['overhead_reduction']:.2f}x "
        f"(gate >= {OVERHEAD_GATE}x)\n"
        f"pool spawns/reuses: {result['persistent_pool_spawns']}/"
        f"{result['persistent_pool_reuses']}\n"
        f"trajectories identical: {result['fingerprints_match']}",
    )
    assert result["rounds"] >= MIN_SEARCH_ROUNDS
    assert result["fingerprints_match"], "runtimes diverged; timing is meaningless"
    assert result["leaked_worker_pids"] == [], "worker processes outlived Runtime.close()"
    assert result["leaked_shm_segments"] == [], "shm segments outlived Runtime.close()"
    assert result["overhead_reduction"] >= OVERHEAD_GATE
