"""Section V-A1 — temporal resolution of the scope attacks.

Paper: "loading a cache line that is in the private cache and timing the
load together only take around 70 cycles. Thus, with Prime+Scope, the
attacker can locate the victim's access in the time domain with a
granularity of 70 cycles ... In comparison, the resolution of Prime+Probe
is over 2000 cycles."
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.attacks.prime_scope import PrimePrefetchScope, PrimeScope
from repro.experiments.resolution import (
    measure_prime_probe_granularity,
    measure_scope_granularity,
    run_resolution_experiment,
)
from repro.sim.machine import Machine


def test_secVA1_temporal_resolution(once):
    pps = once(
        measure_scope_granularity, Machine.skylake(seed=151), PrimePrefetchScope
    )
    ps = measure_scope_granularity(Machine.skylake(seed=151), PrimeScope)
    pp = measure_prime_probe_granularity(Machine.skylake(seed=151))
    rows = [
        ("Prime+Prefetch+Scope check", "~70 cycles", f"{pps:.0f}"),
        ("Prime+Scope check", "~70 cycles", f"{ps:.0f}"),
        ("Prime+Probe round", ">2000 cycles", f"{pp:.0f}"),
    ]
    report(
        "Section V-A1 — temporal resolution (cycles per check)",
        format_table(("attack", "paper", "measured"), rows),
    )
    assert pps < 200 and ps < 250
    assert pp > 2000
    assert pp > 10 * pps, "scope attacks are an order of magnitude finer"


def test_secVA1_detection_delay(once):
    result = once(
        run_resolution_experiment,
        Machine.skylake(seed=152),
        PrimePrefetchScope,
        80,
    )
    summary = result.summary()
    report(
        "Section V-A1 — detection delay of one-shot events (PPS)",
        f"events {result.events}, detected {result.detected}, "
        f"delay p50 {summary.p50:.0f} cycles "
        f"(one check window + one measured miss)",
    )
    # Median delay = check spacing + the miss measurement itself (~230).
    assert summary.p50 < 500
    assert result.detected > result.events * 0.4