"""Section VI-D — the modified-insertion countermeasure.

Paper (its own Python-model simulation): with the Intel LLC policy the
prefetch-based eviction-set method needs 7.25x fewer memory references than
the state of the art; with the modified policy (loads at age 1, prefetches
at age 2) the advantage collapses to 1.26x.  The same policy change breaks
NTP+NTP outright.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.config import SKYLAKE
from repro.experiments.countermeasure import run_countermeasure_experiment


def test_secVID_pollution_bound(once):
    """The trade-off the paper acknowledges: the modified policy forfeits
    PREFETCHNTA's 1/w LLC-pollution guarantee."""
    from repro.countermeasures.insertion_policy import (
        machine_with_modified_insertion,
    )
    from repro.experiments.pollution import run_pollution_experiment
    from repro.sim.machine import Machine

    stock = once(run_pollution_experiment, Machine.skylake(seed=140))
    modified = run_pollution_experiment(
        machine_with_modified_insertion(SKYLAKE, seed=140)
    )
    rows = [
        ("Intel policy", "1 way (1/w bound)", f"{stock.peak_prefetched_ways} way(s)"),
        ("modified policy", "bound lost", f"{modified.peak_prefetched_ways} way(s)"),
    ]
    report(
        "Section VI-D — peak LLC ways occupied by prefetched data",
        format_table(("policy", "paper", "measured"), rows),
    )
    assert stock.pollution_bound_holds
    assert not modified.pollution_bound_holds
    assert modified.peak_prefetched_ways >= 4


def test_secVID_countermeasure(once):
    result = once(run_countermeasure_experiment, SKYLAKE, None, True, 128, 7)
    rows = [
        ("ref ratio, Intel policy", "7.25x", f"{result.original_ratio:.2f}x"),
        ("ref ratio, modified policy", "1.26x", f"{result.modified_ratio:.2f}x"),
        (
            "NTP+NTP BER on protected machine",
            "unreliable",
            f"{result.protected_channel_ber * 100:.0f}%",
        ),
    ]
    report(
        "Section VI-D — modified insertion policy (loads age 1, prefetch age 2)",
        format_table(("metric", "paper", "measured"), rows),
    )
    assert result.original_ratio > 4.0
    assert result.modified_ratio < 2.0
    assert result.advantage_reduced
    assert result.protected_channel_ber > 0.2
