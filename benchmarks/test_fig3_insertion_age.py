"""Figure 3 — the insertion-age experiment.

Paper: after replacing la with a prefetched copy, loading fresh conflicting
lines evicts l1..lw-1 strictly in order for every a — a prefetched line is
indistinguishable from an age-3 line, not specially flagged.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.insertion import run_insertion_age_experiment
from repro.sim.machine import Machine


def test_fig3_insertion_age(once):
    result = once(run_insertion_age_experiment, Machine.skylake(seed=101))
    rows = [
        (a, " ".join(f"l{i}" for i in order[:6]) + " ...", order == list(range(1, 16)))
        for a, order in sorted(result.eviction_orders.items())
    ]
    report(
        "Figure 3 — eviction order while loading l'1..l'w-1 (per prefetch "
        "position a)\npaper: l1..lw-1 evicted in order for every a",
        format_table(("a", "eviction order (prefix)", "in order"), rows),
    )
    assert result.in_order_fraction() == 1.0
