"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures and prints
a paper-vs-measured report.  Absolute numbers come from a simulator, so the
assertions check the *shape* of each result (who wins, by what factor, where
crossovers fall), not cycle-exact equality.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.results_io import save_result
from repro.store import CampaignStore, STORE_ENV, record_artifact, stamp_artifact

#: Machine-readable copies of benchmark results land here.
ARTIFACT_DIR = Path(__file__).parent / "bench_artifacts"

#: Benchmark runs always record into a campaign store: ``$REPRO_STORE``
#: when set, else a database next to the JSON artifacts.  Fail-soft — an
#: unopenable store costs the history entry, never the benchmark.
def _bench_store():
    env = os.environ.get(STORE_ENV)
    if env is not None and env.lower() in ("", "0", "off", "none"):
        return None
    try:
        return CampaignStore(env or ARTIFACT_DIR / "campaigns.sqlite")
    except Exception:  # pragma: no cover - storage health must not gate benches
        return None


_STORE = _bench_store()


def report(title: str, body: str) -> None:
    """Print one experiment's paper-vs-measured block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def artifact(name: str, result) -> None:
    """Persist one experiment result as a JSON artifact (best effort).

    Every dict artifact is stamped with the engine backend the run
    defaulted to and its trial-batch width, so numbers from different
    backends (e.g. a ``REPRO_ENGINE=batch`` CI leg) never get compared
    as like-for-like by accident.  Benchmarks that pin these explicitly
    keep their own values.  Stamping happens on a *copy*: callers assert
    against the dicts they hand in, so the input is never mutated.

    Each artifact also lands in the campaign store (``campaigns.sqlite``
    beside the JSON files, or ``$REPRO_STORE``), which is what feeds the
    ``python -m repro report`` perf trajectory.
    """
    result = stamp_artifact(result)
    try:
        save_result(result, ARTIFACT_DIR / f"{name}.json")
    except Exception as error:  # pragma: no cover - artifacts are optional
        print(f"(artifact {name} not saved: {error})")
    record_artifact(name, result, store=_STORE)


@pytest.fixture
def once(benchmark):
    """Run the (expensive) experiment exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
