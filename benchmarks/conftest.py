"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures and prints
a paper-vs-measured report.  Absolute numbers come from a simulator, so the
assertions check the *shape* of each result (who wins, by what factor, where
crossovers fall), not cycle-exact equality.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.results_io import save_result
from repro.engine import default_backend

#: Machine-readable copies of benchmark results land here.
ARTIFACT_DIR = Path(__file__).parent / "bench_artifacts"


def report(title: str, body: str) -> None:
    """Print one experiment's paper-vs-measured block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def artifact(name: str, result) -> None:
    """Persist one experiment result as a JSON artifact (best effort).

    Every dict artifact is stamped with the engine backend the run
    defaulted to and its trial-batch width, so numbers from different
    backends (e.g. a ``REPRO_ENGINE=batch`` CI leg) never get compared
    as like-for-like by accident.  Benchmarks that pin these explicitly
    keep their own values.
    """
    if isinstance(result, dict):
        result.setdefault("engine_backend", default_backend())
        result.setdefault("trial_batch_size", 1)
    try:
        save_result(result, ARTIFACT_DIR / f"{name}.json")
    except Exception as error:  # pragma: no cover - artifacts are optional
        print(f"(artifact {name} not saved: {error})")


@pytest.fixture
def once(benchmark):
    """Run the (expensive) experiment exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
