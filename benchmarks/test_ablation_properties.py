"""Ablation — which PREFETCHNTA property does each attack actually need?

DESIGN.md calls out two reverse-engineered behaviours as load-bearing:
Property #1 (prefetch inserts at age 3) makes one prefetch evict the
current candidate in one shot — knocking it out kills NTP+NTP.  Property #2
(prefetch LLC hits do not update the age) keeps a monitored line the
eviction candidate across repeated checks — its natural victim is the
Algorithm 2 eviction-set search, whose timed re-prefetches of the target
hit the LLC whenever the target has fallen out of the attacker's L1.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.attacks.ntp_ntp import run_ntp_ntp_channel
from repro.experiments.updating import run_updating_experiment
from repro.cache.qlru import QuadAgeLRU
from repro.cache.srrip import SRRIP
from repro.config import SKYLAKE
from repro.sim.machine import Machine

BITS = [1, 0, 1, 1, 0, 0, 1, 0] * 16


def _ber(llc_policy_factory) -> float:
    machine = Machine(SKYLAKE, seed=110, llc_policy_factory=llc_policy_factory)
    return run_ntp_ntp_channel(machine, BITS, interval=1500).bit_error_rate


def _fig4_evicted_fraction(llc_policy_factory) -> float:
    machine = Machine(SKYLAKE, seed=111, llc_policy_factory=llc_policy_factory)
    return run_updating_experiment(machine, repetitions=40).evicted_fraction


def test_ablation_ntp_ntp_requirements(once):
    stock = once(_ber, None)
    no_property1 = _ber(lambda w: QuadAgeLRU(w, prefetch_insert_age=2))
    srrip_llc = _ber(lambda w: SRRIP(w))
    rows = [
        ("stock Quad-age LRU (Property #1 holds)", "works", f"BER {stock*100:.1f}%"),
        ("insert prefetches at age 2 (no Property #1)", "breaks", f"BER {no_property1*100:.1f}%"),
        ("SRRIP LLC (RRIP cousin, distant prefetch insert)", "works", f"BER {srrip_llc*100:.1f}%"),
    ]
    report(
        "Ablation — NTP+NTP bit error rate under LLC policy variations",
        format_table(("LLC policy", "expectation", "measured"), rows),
    )
    assert stock < 0.02
    assert no_property1 > 0.2, "without age-3 insertion the channel must break"
    assert srrip_llc < 0.05, "any policy with candidate-insertion is vulnerable"


def test_ablation_property2_keeps_candidate_pinned(once):
    """Property #2's observable consequence is the Figure 4 result: a
    prefetch that *hits* in the LLC leaves the line the eviction candidate.
    A rejuvenating prefetch hit (age 3 -> 2) would save the line from the
    next replacement, silently resetting the state every attack relies on
    whenever the attacker's private copy has been evicted."""
    stock = once(_fig4_evicted_fraction, None)
    rejuvenating = _fig4_evicted_fraction(
        lambda w: QuadAgeLRU(w, prefetch_hit_updates=True)
    )
    rows = [
        ("prefetch hits frozen (Property #2 holds)", "100%", f"{stock*100:.0f}%"),
        ("prefetch hits rejuvenate (no Property #2)", "0%", f"{rejuvenating*100:.0f}%"),
    ]
    report(
        "Ablation — Figure 4 outcome (candidate evicted after prefetch hit)",
        format_table(("LLC policy", "expectation", "measured"), rows),
    )
    assert stock == 1.0
    assert rejuvenating <= 0.05  # small residue from measurement-noise spikes
