"""Figure 12 — attack-iteration latency CDFs.

Paper Skylake means: Reload+Refresh 1601, Prefetch+Refresh v1 1165, v2 873
cycles (Kaby Lake: 1767 / 1369 / 1054) — each Prefetch+Refresh variant
strictly faster, with v2 roughly halving Reload+Refresh.
"""

import pytest
from conftest import artifact, report

from repro.analysis.reporting import format_table
from repro.experiments.iteration_latency import run_iteration_latency_experiment
from repro.sim.machine import Machine

PAPER = {
    "skylake": {"reload+refresh": 1601, "prefetch+refresh_v1": 1165, "prefetch+refresh_v2": 873},
    "kaby lake": {"reload+refresh": 1767, "prefetch+refresh_v1": 1369, "prefetch+refresh_v2": 1054},
}


@pytest.fixture(scope="module")
def results():
    return {
        "skylake": run_iteration_latency_experiment(
            lambda: Machine.skylake(seed=108), iterations=300
        ),
        "kaby lake": run_iteration_latency_experiment(
            lambda: Machine.kaby_lake(seed=108), iterations=300
        ),
    }


def test_fig12_iteration_latency(once, results):
    once(lambda: None)
    rows = []
    for platform, result in results.items():
        for name, paper_mean in PAPER[platform].items():
            summary = result.summary(name)
            rows.append((platform, name, paper_mean, f"{summary.mean:.0f}"))
    artifact("fig12_iteration_latency_skylake", results["skylake"])
    report(
        "Figure 12 — per-iteration attacker latency (cycles, CDF mean)",
        format_table(("platform", "attack", "paper", "measured"), rows),
    )
    for platform, result in results.items():
        assert result.mean_ordering_holds(), platform
        rr = result.summary("reload+refresh").mean
        v2 = result.summary("prefetch+refresh_v2").mean
        # v2 cuts the iteration cost by at least a third (paper: ~45%).
        assert v2 < 0.67 * rr, platform
        paper_rr = PAPER[platform]["reload+refresh"]
        assert abs(rr - paper_rr) / paper_rr < 0.35, platform
