"""SoA backend speedup gate: >= 3x over the object engine.

The struct-of-arrays backend exists for exactly one reason — replaying
channel-shaped traces faster than per-op dispatch through the object
hierarchy — so this benchmark gates the claim on the workload that
matters: an NTP+NTP transmit loop (receiver eviction-set walks and
PREFETCHNTA probes, sender PREFETCHNTA plus CLFLUSH re-arm, the
``attacks/ntp_ntp.py`` recipe).  Both backends replay the *same* compiled
trace; the differential suites (``tests/engine/``) pin the outputs to
bit-identical, so everything measured here is pure execution cost.

Timing uses best-of-N interleaved rounds per backend: noise and scheduler
drift only ever add time, so the minima are each backend's cleanest
measurement (same reasoning as the instrumentation-overhead gate).
"""

import gc
import time

from conftest import artifact, report

from repro.config import SKYLAKE
from repro.engine import compile_trace
from repro.sim.machine import Machine

TRIALS = 200
ROUNDS = 5
SPEEDUP_GATE = 3.0


def _transmit_trace(machine) -> list:
    """One NTP+NTP transmit session as a flat (op, core, addr) trace."""
    space = machine.address_space("bench")
    evset = space.contiguous_lines(16)
    dr = space.contiguous_lines(1)[0]
    ds = space.contiguous_lines(1)[0]
    ops = []
    for _ in range(TRIALS):
        # Receiver primes the target set with two eviction-set walks.
        for _ in range(2):
            ops += [("load", 0, a) for a in evset]
        # Probe + sender transmit via PREFETCHNTA.
        ops.append(("prefetchnta", 0, dr))
        ops.append(("prefetchnta", 1, ds))
        # Re-arm: flush the walked lines, touch most of them back in.
        ops += [("clflush", 0, a) for a in evset]
        for a in evset[:15]:
            ops += [("load", 0, a), ("load", 0, a)]
        ops.append(("prefetchnta", 0, dr))
    return ops


def _elapsed(machine, trace, backend) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        machine.run_trace(trace, backend=backend)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _measure() -> dict:
    obj = Machine(SKYLAKE, seed=7)
    soa = Machine(SKYLAKE, seed=7)
    trace = _transmit_trace(obj)
    _transmit_trace(soa)  # mirror the allocations; machines stay twins
    compiled = compile_trace(soa, trace)
    # Warm-up: set allocation, memo fill, plane construction.
    obj.run_trace(trace[:200], backend="object")
    soa.run_trace(compiled, backend="soa")
    obj_times = []
    soa_times = []
    for round_index in range(ROUNDS):
        if round_index % 2:
            soa_times.append(_elapsed(soa, compiled, "soa"))
            obj_times.append(_elapsed(obj, trace, "object"))
        else:
            obj_times.append(_elapsed(obj, trace, "object"))
            soa_times.append(_elapsed(soa, compiled, "soa"))
    obj_best = min(obj_times)
    soa_best = min(soa_times)
    n = len(trace)
    return {
        "workload": "ntp+ntp transmit",
        "trials": TRIALS,
        "trace_length": n,
        "rounds": ROUNDS,
        "object_ops_per_sec": n / obj_best,
        "soa_ops_per_sec": n / soa_best,
        "speedup": obj_best / soa_best,
        "gate": SPEEDUP_GATE,
    }


def test_soa_speedup(once):
    result = once(_measure)
    artifact("soa_speedup", result)
    report(
        "SoA backend speedup — compiled NTP+NTP transmit trace vs object "
        f"engine (gate: >= {SPEEDUP_GATE}x, bit-identical results)",
        f"object: {result['object_ops_per_sec']:,.0f} ops/s\n"
        f"soa:    {result['soa_ops_per_sec']:,.0f} ops/s\n"
        f"speedup: {result['speedup']:.2f}x "
        f"(best-of-{result['rounds']} interleaved rounds, "
        f"{result['trace_length']:,} ops/round)",
    )
    assert result["speedup"] >= SPEEDUP_GATE
