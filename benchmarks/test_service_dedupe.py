"""Service dedupe gate: N=8 duplicate submissions cost <= 2x one sweep.

The fleet-shared result cache is the service's whole performance story:
eight clients racing the *same* sweep spec through the job queue must not
cost eight sweeps.  The first claim computes and populates the shared
cache; every other job is served from it, paying only scheduling overhead.

Gate: wall time for 8 concurrent duplicate submissions (4 dispatcher
slots) <= 2x the wall time of one direct in-process sweep, plus a fixed
per-job scheduling budget.  The 2x term absorbs the worst legal race —
two dispatchers claiming duplicates before either has populated the
cache — and the budget covers HTTP + queue + dispatch per job, which must
stay O(milliseconds) regardless of sweep size.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from conftest import artifact, report

from repro.runner import ResultCache
from repro.service import (
    JobQueue,
    JobSpec,
    LocalBackend,
    ServiceClient,
    ServiceThread,
    execute_job,
)

N_SUBMISSIONS = 8
WORKERS = 4
GATE_FACTOR = 2.0
PER_JOB_BUDGET_SECONDS = 0.5

SPEC = JobSpec(
    experiment="capacity",
    params={"channel": "ntp+ntp", "intervals": [2100, 1800], "n_bits": 48},
    seed=340,
)


def _direct_seconds(tmp_path) -> float:
    """One sweep, run the cheapest possible way: in process, cold cache."""
    cache = ResultCache(str(tmp_path / "direct-cache"))
    start = time.perf_counter()
    execute_job(SPEC, cache=cache)
    return time.perf_counter() - start


def _service_seconds(tmp_path):
    """Eight duplicate submissions racing through one service node."""
    queue = JobQueue(":memory:")
    backend = LocalBackend(
        cache_root=str(tmp_path / "svc-cache"),
        store_path=str(tmp_path / "svc.sqlite"),
    )
    server = ServiceThread(queue, backend, workers=WORKERS)
    try:
        client = ServiceClient(server.host, server.port)
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_SUBMISSIONS) as pool:
            ids = list(pool.map(
                lambda _: client.submit(SPEC)["id"], range(N_SUBMISSIONS)
            ))
            results = list(pool.map(
                lambda job_id: client.wait(job_id, timeout=600)["result"], ids
            ))
        wall = time.perf_counter() - start
        computed = sum(r["shards"]["computed"] for r in results)
        cached = sum(r["shards"]["cached"] for r in results)
        fingerprints = {r["runs"][0]["fingerprint"] for r in results}
        return wall, computed, cached, fingerprints
    finally:
        server.stop()
        queue.close()


def test_duplicate_submissions_are_cache_served(tmp_path):
    direct = _direct_seconds(tmp_path)
    service_wall, computed, cached, fingerprints = _service_seconds(tmp_path)

    shards_per_sweep = len(SPEC.params["intervals"])
    gate = GATE_FACTOR * direct + PER_JOB_BUDGET_SECONDS * N_SUBMISSIONS

    result = {
        "submissions": N_SUBMISSIONS,
        "dispatcher_slots": WORKERS,
        "direct_sweep_seconds": direct,
        "service_wall_seconds": service_wall,
        "gate_seconds": gate,
        "shards_computed_total": computed,
        "shards_cached_total": cached,
        "shards_per_sweep": shards_per_sweep,
        "distinct_fingerprints": len(fingerprints),
    }
    artifact("service_dedupe", result)
    report(
        "Service dedupe: 8 duplicate submissions vs one direct sweep",
        f"direct sweep        : {direct:8.2f} s\n"
        f"8 via service       : {service_wall:8.2f} s"
        f"  (gate {gate:.2f} s)\n"
        f"shards computed     : {computed}  (one sweep = {shards_per_sweep};"
        f" naive 8x = {N_SUBMISSIONS * shards_per_sweep})\n"
        f"shards cache-served : {cached}",
    )

    # All eight jobs converge on one store fingerprint...
    assert len(fingerprints) == 1
    # ...most of the fleet's shards came from the shared cache: in the
    # worst legal race every dispatcher slot claims a duplicate before
    # any has populated the cache, so at most WORKERS sweeps compute —
    # and they compute in parallel, which is why the wall gate holds.
    assert computed <= WORKERS * shards_per_sweep
    assert cached >= (N_SUBMISSIONS - WORKERS) * shards_per_sweep
    # ...and the whole fleet cost no more than ~one sweep plus overhead.
    assert service_wall <= gate
