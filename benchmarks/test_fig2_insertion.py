"""Figure 2 — the insertion-policy experiment (Property #1).

Paper: the prefetched line la is always evicted by the first conflict,
regardless of its position a in the fill order; reloading it takes over
200 cycles in every case.
"""

from conftest import artifact, report

from repro.analysis.reporting import format_table
from repro.experiments.insertion import run_insertion_experiment
from repro.sim.machine import Machine

REPETITIONS = 300


def test_fig2_insertion_policy(once):
    result = once(
        run_insertion_experiment, Machine.skylake(seed=100), repetitions=REPETITIONS
    )
    rows = []
    for a in sorted(result.latencies):
        summary = result.summary(a)
        rows.append(
            (a, f"{summary.mean:.0f}", f"{summary.p50:.0f}",
             f"{result.evicted_fraction[a] * 100:.1f}%")
        )
    artifact("fig2_insertion", result)
    report(
        "Figure 2 — reload latency of the prefetched line la vs position a\n"
        "paper: >200 cycles and evicted for every a (0..15)",
        format_table(("a", "mean (cyc)", "median (cyc)", "evicted"), rows),
    )
    assert result.always_evicted
    assert all(result.summary(a).p50 > 200 for a in result.latencies)
