"""Engine hot-path throughput: production fast path vs the frozen seed engine.

The sharded sweep runner buys wall-clock time across points; this benchmark
guards the speedup *within* a point.  Both engines replay one identical
mixed trace (the channel workloads' op mix: demand loads, PREFETCHNTA, and
CLFLUSH over LLC-conflicting addresses); the production engine must sustain
at least twice the reference's ops/sec while the differential tests pin its
outputs to bit-identical.
"""

import gc
import random
import time

import pytest
from conftest import artifact, report

from repro.cache.reference import ReferenceHierarchy
from repro.config import SKYLAKE
from repro.sim.machine import Machine

TRACE_LENGTH = 120_000
OPS = ("load", "prefetchnta", "clflush")


def _mixed_trace(seed: int, length: int) -> list:
    """The channels' op mix over addresses that collide in the LLC."""
    rng = random.Random(seed)
    lines = [i * 64 for i in range(768)]
    return [
        (rng.choice(OPS), rng.randrange(SKYLAKE.cores), rng.choice(lines))
        for _ in range(length)
    ]


def _reference_ops_per_sec(trace) -> float:
    hierarchy = ReferenceHierarchy(SKYLAKE)
    start = time.perf_counter()
    now = 0
    for op, core, addr in trace:
        if op == "clflush":
            result = hierarchy.clflush(addr, now)
        else:
            result = getattr(hierarchy, op)(core, addr, now)
        now += result.latency
    return len(trace) / (time.perf_counter() - start)


def _fast_ops_per_sec(trace, metrics=None, backend=None) -> float:
    machine = Machine(SKYLAKE, seed=0, metrics=metrics, backend=backend)
    start = time.perf_counter()
    machine.run_trace(trace)
    return len(trace) / (time.perf_counter() - start)


def _fast_elapsed(trace, metrics=None, backend=None, repeats=1) -> float:
    """One timed sample (``repeats`` batches) from a normalized GC state.

    Collecting first and disabling the collector during the run keeps
    generation thresholds from firing inside an arbitrary subset of runs —
    without this, GC pauses alternate between measurement modes and swamp
    the sub-5% effect under test.
    """
    machine = Machine(SKYLAKE, seed=0, metrics=metrics, backend=backend)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(repeats):
            machine.run_trace(trace)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _compare() -> dict:
    trace = _mixed_trace(3, TRACE_LENGTH)
    # Warm-up passes absorb set-allocation and memo-fill costs for every
    # engine, then the timed passes measure steady-state throughput.
    _reference_ops_per_sec(trace[:5000])
    _fast_ops_per_sec(trace[:5000])
    _fast_ops_per_sec(trace[:5000], backend="soa")
    _fast_ops_per_sec(trace[:5000], backend="batch")
    reference = _reference_ops_per_sec(trace)
    fast = _fast_ops_per_sec(trace)
    soa = _fast_ops_per_sec(trace, backend="soa")
    batch = _fast_ops_per_sec(trace, backend="batch")
    return {
        "trace_length": TRACE_LENGTH,
        "reference_ops_per_sec": reference,
        "fast_ops_per_sec": fast,
        "soa_ops_per_sec": soa,
        "batch_ops_per_sec": batch,
        "speedup": fast / reference,
        "soa_speedup_vs_reference": soa / reference,
        "soa_speedup_vs_object": soa / fast,
        "batch_speedup_vs_reference": batch / reference,
    }


def _instrumentation_overhead(backend=None) -> dict:
    """Engine throughput with metrics enabled vs the default null sink.

    The obs layer must be free when disabled and near-free when enabled:
    ``run_trace`` accumulates into batch-local tallies and flushes counters
    once per batch — and MachineMetrics-style publishing reuses cached
    instrument handles — so the enabled/disabled ratio stays above 0.95
    under either trace-execution backend.
    """
    from repro.obs import MetricsRegistry

    # The SoA backend clears a 40k-op batch several times faster than the
    # object engine, so a single batch per sample sits too close to the
    # timer-noise floor for a 5% gate; batch more runs per sample (and take
    # more samples) to keep every sample's duration comparable.
    repeats = 1 if backend in (None, "object") else 4
    rounds = 12 if backend in (None, "object") else 16
    slice_length = 40_000
    trace = _mixed_trace(7, slice_length)
    _fast_elapsed(trace[:5000], backend=backend)
    _fast_elapsed(trace[:5000], metrics=MetricsRegistry(), backend=backend)
    # Shared-box throughput drifts far more than the instrumentation costs,
    # so one long back-to-back pair is dominated by whichever mode ran in
    # the slow moment.  Interleave many short runs instead (swapping the
    # in-pair order each round) and gate on the per-mode *minimum* times:
    # noise and drift only ever add time, so the minima are each mode's
    # cleanest measurement of the actual work.
    null_times = []
    inst_times = []
    for round_index in range(rounds):
        if round_index % 2:
            inst_times.append(
                _fast_elapsed(
                    trace, metrics=MetricsRegistry(),
                    backend=backend, repeats=repeats,
                )
            )
            null_times.append(
                _fast_elapsed(trace, backend=backend, repeats=repeats)
            )
        else:
            null_times.append(
                _fast_elapsed(trace, backend=backend, repeats=repeats)
            )
            inst_times.append(
                _fast_elapsed(
                    trace, metrics=MetricsRegistry(),
                    backend=backend, repeats=repeats,
                )
            )
    null_best = min(null_times)
    inst_best = min(inst_times)
    ops_per_sample = slice_length * repeats
    return {
        "backend": backend or "object",
        "trace_length": slice_length,
        "rounds": rounds,
        "repeats": repeats,
        "null_sink_ops_per_sec": ops_per_sample / null_best,
        "instrumented_ops_per_sec": ops_per_sample / inst_best,
        "throughput_ratio": null_best / inst_best,
    }


def test_engine_throughput(once):
    result = once(_compare)
    artifact("engine_throughput", result)
    report(
        "Engine throughput — object and SoA backends vs frozen seed engine "
        "(identical outputs, see tests/cache/ and tests/engine/ differentials)",
        f"reference:   {result['reference_ops_per_sec']:,.0f} ops/s\n"
        f"object:      {result['fast_ops_per_sec']:,.0f} ops/s "
        f"({result['speedup']:.2f}x reference)\n"
        f"soa:         {result['soa_ops_per_sec']:,.0f} ops/s "
        f"({result['soa_speedup_vs_reference']:.2f}x reference, "
        f"{result['soa_speedup_vs_object']:.2f}x object)\n"
        f"batch (T=1): {result['batch_ops_per_sec']:,.0f} ops/s "
        f"({result['batch_speedup_vs_reference']:.2f}x reference)",
    )
    assert result["speedup"] >= 2.0
    assert result["soa_speedup_vs_reference"] >= 2.0
    assert result["batch_speedup_vs_reference"] >= 2.0


@pytest.mark.parametrize("backend", ["object", "soa", "batch"])
def test_instrumentation_overhead(once, backend):
    result = once(_instrumentation_overhead, backend)
    artifact(f"instrumentation_overhead_{backend}", result)
    report(
        f"Instrumentation overhead ({backend} backend) — metrics registry "
        "enabled vs null sink "
        "(gate: enabled must keep >= 95% of null-sink throughput)",
        f"null sink:    {result['null_sink_ops_per_sec']:,.0f} ops/s\n"
        f"instrumented: {result['instrumented_ops_per_sec']:,.0f} ops/s\n"
        f"ratio:        {result['throughput_ratio']:.3f} "
        f"(best-of-{result['rounds']} interleaved runs per mode)",
    )
    assert result["throughput_ratio"] >= 0.95
