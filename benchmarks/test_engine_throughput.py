"""Engine hot-path throughput: production fast path vs the frozen seed engine.

The sharded sweep runner buys wall-clock time across points; this benchmark
guards the speedup *within* a point.  Both engines replay one identical
mixed trace (the channel workloads' op mix: demand loads, PREFETCHNTA, and
CLFLUSH over LLC-conflicting addresses); the production engine must sustain
at least twice the reference's ops/sec while the differential tests pin its
outputs to bit-identical.
"""

import gc
import random
import time

from conftest import artifact, report

from repro.cache.reference import ReferenceHierarchy
from repro.config import SKYLAKE
from repro.sim.machine import Machine

TRACE_LENGTH = 120_000
OPS = ("load", "prefetchnta", "clflush")


def _mixed_trace(seed: int, length: int) -> list:
    """The channels' op mix over addresses that collide in the LLC."""
    rng = random.Random(seed)
    lines = [i * 64 for i in range(768)]
    return [
        (rng.choice(OPS), rng.randrange(SKYLAKE.cores), rng.choice(lines))
        for _ in range(length)
    ]


def _reference_ops_per_sec(trace) -> float:
    hierarchy = ReferenceHierarchy(SKYLAKE)
    start = time.perf_counter()
    now = 0
    for op, core, addr in trace:
        if op == "clflush":
            result = hierarchy.clflush(addr, now)
        else:
            result = getattr(hierarchy, op)(core, addr, now)
        now += result.latency
    return len(trace) / (time.perf_counter() - start)


def _fast_ops_per_sec(trace, metrics=None) -> float:
    machine = Machine(SKYLAKE, seed=0, metrics=metrics)
    start = time.perf_counter()
    machine.run_trace(trace)
    return len(trace) / (time.perf_counter() - start)


def _fast_elapsed(trace, metrics=None) -> float:
    """One timed run from a normalized GC state.

    Collecting first and disabling the collector during the run keeps
    generation thresholds from firing inside an arbitrary subset of runs —
    without this, GC pauses alternate between measurement modes and swamp
    the sub-5% effect under test.
    """
    machine = Machine(SKYLAKE, seed=0, metrics=metrics)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        machine.run_trace(trace)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _compare() -> dict:
    trace = _mixed_trace(3, TRACE_LENGTH)
    # Warm-up pass absorbs set-allocation and memo-fill costs for both
    # engines, then the timed pass measures steady-state throughput.
    _reference_ops_per_sec(trace[:5000])
    _fast_ops_per_sec(trace[:5000])
    reference = _reference_ops_per_sec(trace)
    fast = _fast_ops_per_sec(trace)
    return {
        "trace_length": TRACE_LENGTH,
        "reference_ops_per_sec": reference,
        "fast_ops_per_sec": fast,
        "speedup": fast / reference,
    }


def _instrumentation_overhead() -> dict:
    """Engine throughput with metrics enabled vs the default null sink.

    The obs layer must be free when disabled and near-free when enabled:
    ``run_trace`` accumulates into batch-local tallies and flushes counters
    once per batch, so the enabled/disabled ratio stays above 0.95.
    """
    from repro.obs import MetricsRegistry

    rounds = 12
    slice_length = 40_000
    trace = _mixed_trace(7, slice_length)
    _fast_elapsed(trace[:5000])
    _fast_elapsed(trace[:5000], metrics=MetricsRegistry())
    # Shared-box throughput drifts far more than the instrumentation costs,
    # so one long back-to-back pair is dominated by whichever mode ran in
    # the slow moment.  Interleave many short runs instead (swapping the
    # in-pair order each round) and gate on the per-mode *minimum* times:
    # noise and drift only ever add time, so the minima are each mode's
    # cleanest measurement of the actual work.
    null_times = []
    inst_times = []
    for round_index in range(rounds):
        if round_index % 2:
            inst_times.append(_fast_elapsed(trace, metrics=MetricsRegistry()))
            null_times.append(_fast_elapsed(trace))
        else:
            null_times.append(_fast_elapsed(trace))
            inst_times.append(_fast_elapsed(trace, metrics=MetricsRegistry()))
    null_best = min(null_times)
    inst_best = min(inst_times)
    return {
        "trace_length": slice_length,
        "rounds": rounds,
        "null_sink_ops_per_sec": slice_length / null_best,
        "instrumented_ops_per_sec": slice_length / inst_best,
        "throughput_ratio": null_best / inst_best,
    }


def test_engine_throughput(once):
    result = once(_compare)
    artifact("engine_throughput", result)
    report(
        "Engine throughput — fast path vs frozen seed engine "
        "(identical outputs, see tests/cache/test_engine_differential.py)",
        f"reference: {result['reference_ops_per_sec']:,.0f} ops/s\n"
        f"fast path: {result['fast_ops_per_sec']:,.0f} ops/s\n"
        f"speedup:   {result['speedup']:.2f}x",
    )
    assert result["speedup"] >= 2.0


def test_instrumentation_overhead(once):
    result = once(_instrumentation_overhead)
    artifact("instrumentation_overhead", result)
    report(
        "Instrumentation overhead — metrics registry enabled vs null sink "
        "(gate: enabled must keep >= 95% of null-sink throughput)",
        f"null sink:    {result['null_sink_ops_per_sec']:,.0f} ops/s\n"
        f"instrumented: {result['instrumented_ops_per_sec']:,.0f} ops/s\n"
        f"ratio:        {result['throughput_ratio']:.3f} "
        f"(best-of-{result['rounds']} interleaved runs per mode)",
    )
    assert result["throughput_ratio"] >= 0.95
