"""Engine hot-path throughput: production fast path vs the frozen seed engine.

The sharded sweep runner buys wall-clock time across points; this benchmark
guards the speedup *within* a point.  Both engines replay one identical
mixed trace (the channel workloads' op mix: demand loads, PREFETCHNTA, and
CLFLUSH over LLC-conflicting addresses); the production engine must sustain
at least twice the reference's ops/sec while the differential tests pin its
outputs to bit-identical.
"""

import random
import time

from conftest import artifact, report

from repro.cache.reference import ReferenceHierarchy
from repro.config import SKYLAKE
from repro.sim.machine import Machine

TRACE_LENGTH = 120_000
OPS = ("load", "prefetchnta", "clflush")


def _mixed_trace(seed: int, length: int) -> list:
    """The channels' op mix over addresses that collide in the LLC."""
    rng = random.Random(seed)
    lines = [i * 64 for i in range(768)]
    return [
        (rng.choice(OPS), rng.randrange(SKYLAKE.cores), rng.choice(lines))
        for _ in range(length)
    ]


def _reference_ops_per_sec(trace) -> float:
    hierarchy = ReferenceHierarchy(SKYLAKE)
    start = time.perf_counter()
    now = 0
    for op, core, addr in trace:
        if op == "clflush":
            result = hierarchy.clflush(addr, now)
        else:
            result = getattr(hierarchy, op)(core, addr, now)
        now += result.latency
    return len(trace) / (time.perf_counter() - start)


def _fast_ops_per_sec(trace) -> float:
    machine = Machine(SKYLAKE, seed=0)
    start = time.perf_counter()
    machine.run_trace(trace)
    return len(trace) / (time.perf_counter() - start)


def _compare() -> dict:
    trace = _mixed_trace(3, TRACE_LENGTH)
    # Warm-up pass absorbs set-allocation and memo-fill costs for both
    # engines, then the timed pass measures steady-state throughput.
    _reference_ops_per_sec(trace[:5000])
    _fast_ops_per_sec(trace[:5000])
    reference = _reference_ops_per_sec(trace)
    fast = _fast_ops_per_sec(trace)
    return {
        "trace_length": TRACE_LENGTH,
        "reference_ops_per_sec": reference,
        "fast_ops_per_sec": fast,
        "speedup": fast / reference,
    }


def test_engine_throughput(once):
    result = once(_compare)
    artifact("engine_throughput", result)
    report(
        "Engine throughput — fast path vs frozen seed engine "
        "(identical outputs, see tests/cache/test_engine_differential.py)",
        f"reference: {result['reference_ops_per_sec']:,.0f} ops/s\n"
        f"fast path: {result['fast_ops_per_sec']:,.0f} ops/s\n"
        f"speedup:   {result['speedup']:.2f}x",
    )
    assert result["speedup"] >= 2.0
