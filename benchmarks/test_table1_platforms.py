"""Table I — the evaluation platforms.

Verifies the simulated machines match the paper's hardware table and prints
it in the paper's layout.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.config import KABY_LAKE, PLATFORMS, SKYLAKE
from repro.sim.machine import Machine


def test_table1_platforms(once):
    machines = once(lambda: [Machine(p, seed=0) for p in PLATFORMS])
    rows = [
        ("Platform", SKYLAKE.name, KABY_LAKE.name),
        ("Microarchitecture", SKYLAKE.microarchitecture, KABY_LAKE.microarchitecture),
        ("Num of cores", SKYLAKE.cores, KABY_LAKE.cores),
        ("Frequency", f"{SKYLAKE.frequency_hz/1e9:.1f} GHz", f"{KABY_LAKE.frequency_hz/1e9:.1f} GHz"),
        ("L1 associativity", SKYLAKE.l1.ways, KABY_LAKE.l1.ways),
        ("L2 associativity", SKYLAKE.l2.ways, KABY_LAKE.l2.ways),
        ("LLC associativity", SKYLAKE.llc.ways, KABY_LAKE.llc.ways),
        ("LLC size", f"{SKYLAKE.llc.size_bytes >> 20} MiB", f"{KABY_LAKE.llc.size_bytes >> 20} MiB"),
        ("LLC type", "Shared, inclusive", "Shared, inclusive"),
    ]
    report(
        "Table I — specifications of the tested (simulated) processors",
        format_table(("", "Skylake", "Kaby Lake"), rows),
    )
    for machine, platform in zip(machines, PLATFORMS):
        assert machine.config is platform
        assert machine.llc_ways == 16
    assert SKYLAKE.frequency_hz == 3.4e9
    assert KABY_LAKE.frequency_hz == 4.2e9
