"""Figure 4 — the updating-policy experiment (Property #2).

Paper: after an LLC-hit PREFETCHNTA on the eviction candidate, a forced
replacement still evicts it — reloading takes over 200 cycles in every
trial, so the hit did not refresh the age.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.updating import run_updating_experiment
from repro.sim.machine import Machine

REPETITIONS = 300


def test_fig4_updating_policy(once):
    result = once(
        run_updating_experiment, Machine.skylake(seed=102), repetitions=REPETITIONS
    )
    summary = result.summary()
    rows = [
        ("reload latency mean", ">200 cycles", f"{summary.mean:.0f} cycles"),
        ("reload latency p50", ">200 cycles", f"{summary.p50:.0f} cycles"),
        ("evicted fraction", "100%", f"{result.evicted_fraction * 100:.1f}%"),
        ("age 2 preserved on hit", "yes", "yes" if result.age_preserved[2] else "NO"),
        ("age 1 preserved on hit", "yes", "yes" if result.age_preserved[1] else "NO"),
        ("age 0 preserved on hit", "yes", "yes" if result.age_preserved[0] else "NO"),
    ]
    report(
        "Figure 4 — PREFETCHNTA LLC hits do not update the age",
        format_table(("check", "paper", "measured"), rows),
    )
    assert result.evicted_fraction == 1.0
    assert summary.p50 > 200
    assert all(result.age_preserved.values())
