"""Whole-stack integration — concurrent RSA key extraction (extension).

Not a paper table, but the composition the paper motivates: the
reverse-engineered prefetch properties give a monitor fast enough
(~1K-cycle re-prime, ~70-cycle checks) to follow a free-running
square-and-multiply victim and read its exponent out of eviction
timestamps alone.
"""

import random

from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.end_to_end_spy import run_end_to_end_spy
from repro.sim.machine import Machine

KEY_BITS = 96


def test_end_to_end_concurrent_key_extraction(once):
    rng = random.Random(42)
    key = [rng.randint(0, 1) for _ in range(KEY_BITS)]
    single = once(run_end_to_end_spy, Machine.skylake(seed=190), key)
    multi = run_end_to_end_spy(Machine.skylake(seed=190), key, traces=4)
    rows = [
        ("1 trace", f"{single.accuracy * 100:.1f}%", single.detections),
        ("4 traces (OR-combined)", f"{multi.accuracy * 100:.1f}%", multi.detections),
    ]
    report(
        f"End-to-end: Prime+Prefetch+Scope vs a free-running "
        f"{KEY_BITS}-bit square-and-multiply victim",
        format_table(("recovery", "key accuracy", "detections"), rows),
    )
    assert single.accuracy > 0.7
    assert multi.accuracy >= 0.9
    assert multi.accuracy >= single.accuracy