"""Calibration-sensitivity check (methodology benchmark).

The simulator's sync budget is a calibrated constant; this benchmark
perturbs it +-20% and shows the paper's headline — NTP+NTP over ~3x
Prime+Probe — holds across the range, i.e. the conclusion does not hinge on
the calibration point.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.config import SKYLAKE
from repro.experiments.sensitivity import run_sensitivity_experiment


def test_headline_survives_calibration_error(once):
    result = once(run_sensitivity_experiment, SKYLAKE)
    rows = [
        (f"x{p.sync_scale}", f"{p.ntp_capacity:.0f}",
         f"{p.prime_probe_capacity:.0f}", f"{p.advantage:.2f}x")
        for p in result.points
    ]
    report(
        "Sensitivity — peak capacities vs sync-budget perturbation "
        "(paper headline: NTP+NTP 'over 3x' Prime+Probe)",
        format_table(("sync budget", "NTP+NTP KB/s", "P+P KB/s", "advantage"), rows),
    )
    low, high = result.advantage_range()
    assert low > 2.5, "the headline advantage must survive -20% calibration error"
    assert high < 6.0, "and must not be a calibration artifact either"