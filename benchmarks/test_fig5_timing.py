"""Figure 5 — PREFETCHNTA timing vs data location (Property #3).

Paper bands on Skylake: ~70 cycles when the target is in L1, 90-100 cycles
when only in the LLC, >200 cycles when uncached.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.timing_variance import run_timing_variance_experiment
from repro.sim.machine import Machine

REPETITIONS = 500
PAPER_BANDS = {"l1_hit": "~70", "llc_hit": "90-100", "dram": ">200"}


def test_fig5_timing_variance(once):
    result = once(
        run_timing_variance_experiment,
        Machine.skylake(seed=103),
        repetitions=REPETITIONS,
    )
    rows = []
    for scenario in ("l1_hit", "llc_hit", "dram"):
        summary = result.summary(scenario)
        rows.append(
            (scenario, PAPER_BANDS[scenario],
             f"p50={summary.p50:.0f} p95={summary.p95:.0f}")
        )
    report(
        "Figure 5 — PREFETCHNTA execution time by target location (Skylake)",
        format_table(("scenario", "paper (cyc)", "measured (cyc)"), rows),
    )
    assert result.separated()
    assert 55 <= result.summary("l1_hit").p50 <= 85
    assert 88 <= result.summary("llc_hit").p50 <= 110
    assert result.summary("dram").p50 > 200
