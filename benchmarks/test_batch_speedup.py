"""Trial-batched engine speedup gate: >= 10x over per-trial SoA replay.

The batch backend exists for one workload shape: a sweep shard's worth of
trials that share a warm-start prefix and diverge only in their payloads.
This benchmark builds 64 NTP+NTP transmit sessions that differ per trial in
the sender's random bit sequence (PREFETCHNTA on one of two lines per
iteration — exactly the divergence a capacity-sweep shard produces), then
times the whole cohort two ways from the same checkpoint:

* **soa**: 64 × (restore checkpoint, replay the compiled trace);
* **batch**: one restore, one :func:`run_trace_batch` array program.

The trials are mostly coherent — the eviction-set walks, probes, and
re-arms are identical ops — so the batch engine executes the shared rows
once and pays per-trial cost only on the sender's divergent sets.  The
differential suite (``tests/engine/test_batch_differential.py``) pins the
outputs bit-identical; a cheap out-of-timing clock check here guards
against benchmarking a diverged computation.

Timing uses best-of-N interleaved rounds per strategy: noise only ever
adds time, so the minima are each strategy's cleanest measurement.
"""

import gc
import random
import time

from conftest import artifact, report

from repro.config import SKYLAKE
from repro.engine import compile_trace, run_trace_batch
from repro.sim.machine import Machine

TRIAL_BATCH = 64
TRANSMITS = 40
ROUNDS = 3
SPEEDUP_GATE = 10.0


def _trial_trace(evset, dr, ds, ds2, bits) -> list:
    """One transmit session; ``bits`` drives the sender's line choice."""
    ops = []
    for bit in bits:
        for _ in range(2):
            ops += [("load", 0, a) for a in evset]
        ops.append(("prefetchnta", 0, dr))
        ops.append(("prefetchnta", 1, ds if bit else ds2))
        ops += [("clflush", 0, a) for a in evset]
        for a in evset[:15]:
            ops += [("load", 0, a), ("load", 0, a)]
        ops.append(("prefetchnta", 0, dr))
    return ops


def _build():
    machine = Machine(SKYLAKE, seed=7)
    space = machine.address_space("bench")
    evset = space.contiguous_lines(16)
    dr = space.contiguous_lines(1)[0]
    ds = space.contiguous_lines(1)[0]
    ds2 = space.contiguous_lines(1)[0]
    compiled = []
    for t in range(TRIAL_BATCH):
        bits = random.Random(100 + t).choices([0, 1], k=TRANSMITS)
        compiled.append(
            compile_trace(machine, _trial_trace(evset, dr, ds, ds2, bits))
        )
    return machine, compiled


def _soa_elapsed(machine, checkpoint, compiled) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for trace in compiled:
            machine.restore(checkpoint)
            machine.run_trace(trace, backend="soa")
        return time.perf_counter() - start
    finally:
        gc.enable()


def _batch_elapsed(machine, checkpoint, compiled):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        machine.restore(checkpoint)
        result = run_trace_batch(machine, compiled)
        return time.perf_counter() - start, result
    finally:
        gc.enable()


def _measure() -> dict:
    machine, compiled = _build()
    checkpoint = machine.checkpoint()
    # Warm-up: plane construction, memo fill, one short batch.
    machine.restore(checkpoint)
    machine.run_trace(compiled[0], backend="soa")
    machine.restore(checkpoint)
    run_trace_batch(machine, [c for c in compiled[:4]])

    soa_times = []
    batch_times = []
    batch_result = None
    for round_index in range(ROUNDS):
        if round_index % 2:
            elapsed, batch_result = _batch_elapsed(machine, checkpoint, compiled)
            batch_times.append(elapsed)
            soa_times.append(_soa_elapsed(machine, checkpoint, compiled))
        else:
            soa_times.append(_soa_elapsed(machine, checkpoint, compiled))
            elapsed, batch_result = _batch_elapsed(machine, checkpoint, compiled)
            batch_times.append(elapsed)

    # Out-of-timing sanity: each trial's end clock matches a scalar replay
    # (full bit-identity is the differential suite's job).
    for t in (0, TRIAL_BATCH // 2, TRIAL_BATCH - 1):
        machine.restore(checkpoint)
        machine.run_trace(compiled[t], backend="soa")
        assert batch_result.clock(t) == machine.clock, t

    soa_best = min(soa_times)
    batch_best = min(batch_times)
    total_ops = sum(len(trace) for trace in compiled)
    return {
        "workload": "ntp+ntp transmit, per-trial sender bits",
        "trial_batch_size": TRIAL_BATCH,
        "transmits_per_trial": TRANSMITS,
        "total_ops": total_ops,
        "rounds": ROUNDS,
        "soa_ops_per_sec": total_ops / soa_best,
        "batch_ops_per_sec": total_ops / batch_best,
        "speedup": soa_best / batch_best,
        "gate": SPEEDUP_GATE,
        "engine_backend": "batch",
    }


def test_batch_speedup(once):
    result = once(_measure)
    artifact("batch_speedup", result)
    report(
        f"Trial-batched engine speedup — {TRIAL_BATCH} divergent NTP+NTP "
        "transmit trials as one array program vs per-trial SoA replay "
        f"(gate: >= {SPEEDUP_GATE}x, bit-identical per trial)",
        f"soa (64 replays): {result['soa_ops_per_sec']:,.0f} ops/s\n"
        f"batch (1 program): {result['batch_ops_per_sec']:,.0f} ops/s\n"
        f"speedup: {result['speedup']:.2f}x "
        f"(best-of-{result['rounds']} interleaved rounds, "
        f"{result['total_ops']:,} ops/cohort)",
    )
    assert result["speedup"] >= SPEEDUP_GATE
