"""Search efficiency: adaptive evaluation spend vs an exhaustive grid.

A grid sweep locates a feature at step resolution only by visiting every
grid point.  The mutation loop (:mod:`repro.search`) must find the same
planted capacity cliff — exactly, at grid resolution — while computing at
most half the evaluations, across several seeds.  Convergence itself is
pinned by ``tests/search/test_convergence.py``; this benchmark guards
the *efficiency ratio* and records it as a perf-trajectory artifact.
"""

from conftest import artifact, report

from repro.search import EvalContext, MutationSearch, ToyCliffObjective

SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)
GATE = 2.0  # grid evaluations per adaptive evaluation, worst seed


def _measure() -> dict:
    objective = ToyCliffObjective(cliff=256)
    grid = objective.space.grid_size
    used = []
    found = 0
    for seed in SEEDS:
        outcome = MutationSearch(objective, budget=grid // 2).run(
            EvalContext(seed=seed)
        )
        used.append(outcome.evaluations_used)
        found += outcome.winner == {"interval": 256}
    worst = max(used)
    return {
        "grid_points": grid,
        "seeds": len(SEEDS),
        "cliffs_found": found,
        "evaluations_worst": worst,
        "evaluations_mean": sum(used) / len(used),
        "speedup": grid / worst,
        "gate": GATE,
    }


def test_search_efficiency(once):
    result = once(_measure)
    artifact("search_efficiency", result)
    report(
        "Adaptive search efficiency — mutation loop vs exhaustive grid "
        "(cliff localization at grid resolution)",
        f"grid: {result['grid_points']} points\n"
        f"adaptive: {result['evaluations_worst']} evaluations worst-case "
        f"({result['evaluations_mean']:.1f} mean over {result['seeds']} seeds)\n"
        f"cliffs found exactly: {result['cliffs_found']}/{result['seeds']}\n"
        f"efficiency: {result['speedup']:.2f}x fewer evaluations",
    )
    assert result["cliffs_found"] == result["seeds"]
    assert result["speedup"] >= GATE
