"""Table III — operations needed to revert the cache state (16-way LLC).

Paper: Reload+Refresh needs 2 flushes + 2 DRAM accesses + 14 LLC accesses
per iteration; Prefetch+Refresh v1 needs 2 + 2 + 0; v2 needs 1 + 1 + 0.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.iteration_latency import run_iteration_latency_experiment
from repro.sim.machine import Machine

PAPER = {
    "reload+refresh": (2, 2, 14),
    "prefetch+refresh_v1": (2, 2, 0),
    "prefetch+refresh_v2": (1, 1, 0),
}


def test_table3_revert_operations(once):
    result = once(
        run_iteration_latency_experiment, lambda: Machine.skylake(seed=107), 200
    )
    rows = []
    for name, paper in PAPER.items():
        costs = result.revert_costs[name]
        rows.append(
            (
                name,
                f"{paper[0]}/{paper[1]}/{paper[2]}",
                f"{costs.flushes}/{costs.dram_accesses}/{costs.llc_accesses}",
            )
        )
    report(
        "Table III — # of ops for reverting the cache state "
        "(flushes / DRAM accesses / LLC accesses)",
        format_table(("attack", "paper", "measured"), rows),
    )
    rr = result.revert_costs["reload+refresh"]
    v1 = result.revert_costs["prefetch+refresh_v1"]
    v2 = result.revert_costs["prefetch+refresh_v2"]
    assert (rr.flushes, rr.dram_accesses, rr.llc_accesses) == (2, 2, 14)
    assert (v1.flushes, v1.llc_accesses) == (2, 0) and v1.dram_accesses <= 2
    assert (v2.flushes, v2.dram_accesses, v2.llc_accesses) == (1, 1, 0)
    assert all(acc >= 0.95 for acc in result.accuracy.values())
