"""Warm-start trial throughput: prefix checkpoints vs per-trial rebuilds.

The capacity sweep's trials share one machine build + channel
construction/calibration prefix; only the transmission interval varies.
The warm-start executor (:mod:`repro.runner.warmstart`) pays that prefix
once and restores a :class:`~repro.sim.MachineCheckpoint` per trial,
while the cold path re-simulates it every time.  The results are pinned
bit-identical by ``tests/runner/test_warmstart.py``; this benchmark
guards the payoff: warm trial throughput must be at least twice cold.
"""

import gc
import time

from conftest import artifact, report

from repro.experiments.capacity_sweep import run_capacity_sweep
from repro.runner import clear_warm_states
from repro.sim.machine import Machine

#: One Figure 8 curve at a short message length: trial count high enough
#: to amortize noise, bodies small enough that the prefix matters (the
#: regime sweeps actually run in — the result cache elides long bodies).
INTERVALS = (4200, 2800, 2100, 1900, 1800, 1700, 1550, 1450, 1400, 1340, 1250, 1050)
N_BITS = 16
ROUNDS = 3


def _sweep_elapsed(warm: bool) -> float:
    """One timed sweep from a cold memo and a normalized GC state."""
    clear_warm_states()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        run_capacity_sweep(
            lambda: Machine.skylake(seed=3), "ntp+ntp", intervals=INTERVALS,
            n_bits=N_BITS, seed=5, jobs=1, warm_start=warm,
        )
        return time.perf_counter() - start
    finally:
        gc.enable()


def _compare() -> dict:
    _sweep_elapsed(True)  # warm-up absorbs import and allocator costs
    _sweep_elapsed(False)
    # Interleave rounds and gate on per-mode minima: noise only ever adds
    # time, so the minima are each mode's cleanest measurement.
    cold_times, warm_times = [], []
    for round_index in range(ROUNDS):
        if round_index % 2:
            warm_times.append(_sweep_elapsed(True))
            cold_times.append(_sweep_elapsed(False))
        else:
            cold_times.append(_sweep_elapsed(False))
            warm_times.append(_sweep_elapsed(True))
    cold_best = min(cold_times)
    warm_best = min(warm_times)
    trials = len(INTERVALS)
    return {
        "trials": trials,
        "n_bits": N_BITS,
        "rounds": ROUNDS,
        "cold_trials_per_sec": trials / cold_best,
        "warm_trials_per_sec": trials / warm_best,
        "speedup": cold_best / warm_best,
    }


def test_warmstart_speedup(once):
    result = once(_compare)
    artifact("warmstart_speedup", result)
    report(
        "Warm-start sweep throughput — checkpoint restore vs per-trial "
        "rebuild (identical outputs, see tests/runner/test_warmstart.py)",
        f"cold: {result['cold_trials_per_sec']:,.1f} trials/s\n"
        f"warm: {result['warm_trials_per_sec']:,.1f} trials/s\n"
        f"speedup: {result['speedup']:.2f}x "
        f"({result['trials']} trials, best-of-{result['rounds']})",
    )
    assert result["speedup"] >= 2.0
