"""Figure 7 — the two-set pipelining rationale, measured.

Paper (Section IV-B2): an in-flight line cannot be evicted, so on a single
set the receiver's reset prefetch must trail the sender's by more than a
DRAM fill; alternating two sets removes the constraint entirely.  The demo
sweeps the spacing on one set and runs the two-set schedule at zero
spacing.
"""

from conftest import report

from repro.analysis.reporting import format_table
from repro.experiments.pipelining import run_pipelining_demo
from repro.experiments.protocol_walkthrough import run_protocol_walkthrough
from repro.sim.machine import Machine


def test_fig7_pipelining_rationale(once):
    machine = Machine.skylake(seed=263)
    dram = machine.config.latency.dram
    result = once(run_pipelining_demo, machine)
    rows = [
        (p.spacing, "yes" if p.receiver_read_one else "NO",
         "stuck (in flight)" if p.sender_line_survived else "reset OK")
        for p in result.points
    ]
    rows.append(("2 sets, 0 spacing", "yes", "reset OK (pipelined)"))
    report(
        f"Figure 7 — single-set spacing sweep (DRAM fill = {dram} cycles)",
        format_table(("sender->receiver spacing", "bit read", "channel state"), rows),
    )
    assert result.min_reset_spacing > dram
    assert result.two_set_success


def test_fig6_protocol_walkthrough(once):
    result = once(run_protocol_walkthrough, Machine.skylake(seed=264))
    report("Figure 6 — NTP+NTP set-state walkthrough (executed)", result.render())
    assert len(result.steps) == 6