"""Section V-A3 extended — false negatives across victim frequencies.

The paper measures one victim period (1.5K cycles).  The blind-window
mechanism predicts the whole curve: an attack misses events while the
victim period is below its preparation latency and converges to ~0% above
it.  The sweep locates each attack's usable-frequency threshold — the
practical meaning of Prime+Prefetch+Scope's 2x faster preparation.
"""

from conftest import artifact, report

from repro.analysis.reporting import format_table
from repro.experiments.detection_sweep import run_detection_sweep
from repro.sim.machine import Machine


def test_detection_vs_victim_period(once):
    result = once(
        run_detection_sweep, lambda: Machine.skylake(seed=240), None, 500_000
    )
    artifact("detection_sweep", result)
    report(
        "Section V-A3 extended — FN rate vs victim period "
        "(paper point: 1500 cycles -> ~50% vs <2%)",
        format_table(result.header(), result.rows()),
    )
    pps = {p.period: p.false_negative_rate for p in result.curve("PrimePrefetchScope")}
    ps = {p.period: p.false_negative_rate for p in result.curve("PrimeScope")}
    # Below both preps: both attacks miss most events.
    assert pps[1000] > 0.5 and ps[1000] > 0.5
    # The paper's point: at 1500 cycles PPS works, P+S misses every other.
    assert pps[1500] < 0.05
    assert 0.35 < ps[1500] < 0.65
    # Far above both preps: both attacks converge to ~0.
    assert pps[4500] < 0.1 and ps[4500] < 0.1
    # The usable-frequency thresholds are ordered by prep latency.
    assert result.usable_period("PrimePrefetchScope") < result.usable_period(
        "PrimeScope"
    )