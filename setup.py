"""Setup shim for environments whose pip cannot build PEP 660 editable wheels
(offline boxes without the `wheel` package).  All real metadata lives in
pyproject.toml; this file only enables `pip install -e . --no-use-pep517`."""

from setuptools import setup

setup()
